//! The [`Recorder`]: a shared, cheaply-cloneable sink for typed spans,
//! counters, histograms, and per-step samples.
//!
//! Design constraints (the paper is a *characterization* study, so the
//! instrument must not perturb the measurement):
//!
//! - **Disabled fast path.** `Recorder::disabled()` costs one relaxed
//!   atomic load per call site — no allocation, no lock, no `Instant::now`.
//!   The engine can therefore keep its hooks wired permanently.
//! - **Two clocks.** Real-engine spans use wall time against the recorder's
//!   epoch; the virtual cluster records spans at explicit *simulated*
//!   timestamps. Both land in the same event stream, one lane (`tid`) per
//!   virtual rank, so `chrome://tracing` shows Fig. 4/5-style imbalance as
//!   a timeline.
//! - **Bounded memory.** Events and step samples are capped; evictions are
//!   counted and reported rather than silently dropped.

use crate::hist::{HistSummary, LogHistogram};
use crate::series::{StepSample, StepSeries};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Chrome `trace_event` phase of a recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Complete span (`ph: "X"`, has a duration).
    Span,
    /// Instant event (`ph: "i"`).
    Instant,
    /// Counter sample (`ph: "C"`).
    Counter,
}

/// One recorded trace event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Lane (virtual rank / thread); Chrome `tid`.
    pub lane: u32,
    /// Category (e.g. `"task"`, `"mpi"`, `"kspace"`); Chrome `cat`.
    pub cat: &'static str,
    /// Event name (e.g. `"Pair"`, `"MPI_Wait"`, `"fft_forward"`).
    pub name: &'static str,
    /// Phase.
    pub phase: Phase,
    /// Start timestamp, microseconds on the trace clock.
    pub ts_us: f64,
    /// Duration, microseconds (spans only).
    pub dur_us: f64,
    /// Counter value (counters only).
    pub value: f64,
}

/// An owned, point-in-time copy of everything a [`Recorder`] has retained —
/// the hand-off surface between the recording layer and analysis code
/// (md-insight) that must not hold the recorder's lock while it works.
#[derive(Debug, Clone, Default)]
pub struct ObserveSnapshot {
    /// Retained trace events, in recording order.
    pub events: Vec<TraceEvent>,
    /// Retained per-step samples, oldest → newest.
    pub steps: Vec<StepSample>,
    /// Step samples evicted from the ring to stay within capacity.
    pub evicted_steps: u64,
    /// Step samples ever recorded (retained + evicted).
    pub total_steps: u64,
    /// Trace events dropped at the event cap.
    pub dropped_events: u64,
    /// Counter and gauge values by name.
    pub counters: BTreeMap<&'static str, f64>,
    /// Histogram summaries by name.
    pub hists: BTreeMap<&'static str, HistSummary>,
    /// Lane names (`tid` → label).
    pub lanes: BTreeMap<u32, String>,
}

/// Configuration for a [`Recorder`].
#[derive(Debug, Clone)]
pub struct ObserveConfig {
    /// Whether recording starts enabled.
    pub enabled: bool,
    /// Maximum retained step samples (ring buffer).
    pub step_capacity: usize,
    /// Maximum retained trace events.
    pub max_events: usize,
}

impl Default for ObserveConfig {
    fn default() -> Self {
        ObserveConfig {
            enabled: true,
            step_capacity: 1 << 16,
            max_events: 1 << 20,
        }
    }
}

impl ObserveConfig {
    /// Reads configuration from the environment:
    /// `MD_OBSERVE` (`1`/`true` enables), `MD_OBSERVE_STEPS`,
    /// `MD_OBSERVE_EVENTS` override the capacities.
    pub fn from_env() -> Self {
        let enabled = matches!(
            std::env::var("MD_OBSERVE").as_deref(),
            Ok("1") | Ok("true") | Ok("on")
        );
        let defaults = ObserveConfig::default();
        let step_capacity = std::env::var("MD_OBSERVE_STEPS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(defaults.step_capacity);
        let max_events = std::env::var("MD_OBSERVE_EVENTS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(defaults.max_events);
        ObserveConfig {
            enabled,
            step_capacity,
            max_events,
        }
    }
}

#[derive(Debug)]
pub(crate) struct RecorderState {
    pub(crate) events: Vec<TraceEvent>,
    pub(crate) dropped_events: u64,
    pub(crate) steps: StepSeries,
    pub(crate) hists: BTreeMap<&'static str, LogHistogram>,
    pub(crate) counters: BTreeMap<&'static str, f64>,
    pub(crate) lanes: BTreeMap<u32, String>,
    max_events: usize,
}

struct Inner {
    enabled: AtomicBool,
    epoch: Instant,
    state: Mutex<RecorderState>,
}

/// Shared observability sink; `Clone` is an `Arc` bump, so one recorder can
/// be threaded through engine, k-space solver, and virtual cluster.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish_non_exhaustive()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new(ObserveConfig::default())
    }
}

impl Recorder {
    /// A recorder with explicit configuration.
    pub fn new(cfg: ObserveConfig) -> Self {
        Recorder {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(cfg.enabled),
                epoch: Instant::now(),
                state: Mutex::new(RecorderState {
                    events: Vec::new(),
                    dropped_events: 0,
                    steps: StepSeries::new(cfg.step_capacity),
                    hists: BTreeMap::new(),
                    counters: BTreeMap::new(),
                    lanes: BTreeMap::new(),
                    max_events: cfg.max_events,
                }),
            }),
        }
    }

    /// A recorder that starts disabled (the no-overhead default for
    /// engines that are not being profiled).
    pub fn disabled() -> Self {
        Recorder::new(ObserveConfig {
            enabled: false,
            ..ObserveConfig::default()
        })
    }

    /// A recorder configured from `MD_OBSERVE*` environment variables.
    pub fn from_env() -> Self {
        Recorder::new(ObserveConfig::from_env())
    }

    /// Whether recording is currently on (one relaxed atomic load).
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Microseconds since the recorder's epoch (wall clock).
    #[inline]
    pub fn now_us(&self) -> f64 {
        self.inner.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Names a lane (one lane per virtual rank; lane 0 is the real engine).
    pub fn set_lane_name(&self, lane: u32, name: impl Into<String>) {
        if !self.is_enabled() {
            return;
        }
        let mut st = self.inner.state.lock().expect("recorder state");
        st.lanes.insert(lane, name.into());
    }

    fn push_event(&self, ev: TraceEvent) {
        let mut st = self.inner.state.lock().expect("recorder state");
        if st.events.len() >= st.max_events {
            st.dropped_events += 1;
            return;
        }
        st.events.push(ev);
    }

    /// Starts a wall-clock span; recorded on guard drop. When disabled this
    /// is a single atomic load and the guard is inert.
    #[inline]
    pub fn span(&self, lane: u32, cat: &'static str, name: &'static str) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard {
                rec: None,
                lane,
                cat,
                name,
                start: None,
            };
        }
        SpanGuard {
            rec: Some(self),
            lane,
            cat,
            name,
            start: Some(Instant::now()),
        }
    }

    /// Records a completed wall-clock span that started at `start` and took
    /// `seconds` (for call sites that already timed themselves).
    #[inline]
    pub fn record_span(
        &self,
        lane: u32,
        cat: &'static str,
        name: &'static str,
        start: Instant,
        seconds: f64,
    ) {
        if !self.is_enabled() {
            return;
        }
        let ts_us = start.duration_since(self.inner.epoch).as_secs_f64() * 1e6;
        self.push_event(TraceEvent {
            lane,
            cat,
            name,
            phase: Phase::Span,
            ts_us,
            dur_us: seconds * 1e6,
            value: 0.0,
        });
    }

    /// Records a span at an explicit timestamp on a *simulated* clock
    /// (`ts_us`/`dur_us` in microseconds of virtual time).
    #[inline]
    pub fn record_span_at(
        &self,
        lane: u32,
        cat: &'static str,
        name: &'static str,
        ts_us: f64,
        dur_us: f64,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.push_event(TraceEvent {
            lane,
            cat,
            name,
            phase: Phase::Span,
            ts_us,
            dur_us,
            value: 0.0,
        });
    }

    /// Records an instant event at the current wall clock.
    #[inline]
    pub fn instant(&self, lane: u32, cat: &'static str, name: &'static str) {
        if !self.is_enabled() {
            return;
        }
        let ts_us = self.now_us();
        self.push_event(TraceEvent {
            lane,
            cat,
            name,
            phase: Phase::Instant,
            ts_us,
            dur_us: 0.0,
            value: 0.0,
        });
    }

    /// Adds `delta` to the named cumulative counter and emits a counter
    /// event with the new total at the current wall clock.
    #[inline]
    pub fn count(&self, lane: u32, name: &'static str, delta: f64) {
        if !self.is_enabled() {
            return;
        }
        let ts_us = self.now_us();
        let total = {
            let mut st = self.inner.state.lock().expect("recorder state");
            let slot = st.counters.entry(name).or_insert(0.0);
            *slot += delta;
            *slot
        };
        self.push_event(TraceEvent {
            lane,
            cat: "counter",
            name,
            phase: Phase::Counter,
            ts_us,
            dur_us: 0.0,
            value: total,
        });
    }

    /// Sets the named gauge to an absolute value (counter event, no sum).
    #[inline]
    pub fn gauge(&self, lane: u32, name: &'static str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let ts_us = self.now_us();
        {
            let mut st = self.inner.state.lock().expect("recorder state");
            st.counters.insert(name, value);
        }
        self.push_event(TraceEvent {
            lane,
            cat: "counter",
            name,
            phase: Phase::Counter,
            ts_us,
            dur_us: 0.0,
            value,
        });
    }

    /// Records `value` into the named log-bucketed histogram.
    #[inline]
    pub fn observe(&self, name: &'static str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut st = self.inner.state.lock().expect("recorder state");
        st.hists.entry(name).or_default().observe(value);
    }

    /// Appends one per-timestep sample to the ring-buffered series.
    #[inline]
    pub fn push_step(&self, sample: StepSample) {
        if !self.is_enabled() {
            return;
        }
        let mut st = self.inner.state.lock().expect("recorder state");
        st.steps.push(sample);
    }

    /// Current value of a cumulative counter or gauge.
    pub fn counter_value(&self, name: &str) -> Option<f64> {
        let st = self.inner.state.lock().expect("recorder state");
        st.counters.get(name).copied()
    }

    /// Summary of a histogram, if it has been observed.
    pub fn hist_summary(&self, name: &str) -> Option<HistSummary> {
        let st = self.inner.state.lock().expect("recorder state");
        st.hists.get(name).map(|h| h.summary())
    }

    /// A snapshot of the retained trace events (cloned; intended for tests
    /// and small traces — exporters use the internal state directly).
    pub fn events(&self) -> Vec<TraceEvent> {
        let st = self.inner.state.lock().expect("recorder state");
        st.events.clone()
    }

    /// The most recent step sample, if any.
    pub fn last_step(&self) -> Option<StepSample> {
        let st = self.inner.state.lock().expect("recorder state");
        st.steps.last().copied()
    }

    /// Number of retained trace events.
    pub fn event_count(&self) -> usize {
        let st = self.inner.state.lock().expect("recorder state");
        st.events.len()
    }

    /// Number of retained step samples.
    pub fn step_count(&self) -> usize {
        let st = self.inner.state.lock().expect("recorder state");
        st.steps.len()
    }

    /// An owned copy of everything retained so far, for analysis layers
    /// that must not hold the recorder's lock while they work (the lock is
    /// taken once, for the duration of the copy).
    pub fn snapshot(&self) -> ObserveSnapshot {
        let st = self.inner.state.lock().expect("recorder state");
        ObserveSnapshot {
            events: st.events.clone(),
            steps: st.steps.iter().copied().collect(),
            evicted_steps: st.steps.evicted(),
            total_steps: st.steps.total_pushed(),
            dropped_events: st.dropped_events,
            counters: st.counters.clone(),
            hists: st.hists.iter().map(|(&k, h)| (k, h.summary())).collect(),
            lanes: st.lanes.clone(),
        }
    }

    /// Runs `f` with a read view of the internal state (used by exporters).
    pub(crate) fn with_state<T>(&self, f: impl FnOnce(&RecorderState) -> T) -> T {
        let st = self.inner.state.lock().expect("recorder state");
        f(&st)
    }
}

/// RAII guard for [`Recorder::span`]; records the span on drop.
pub struct SpanGuard<'a> {
    rec: Option<&'a Recorder>,
    lane: u32,
    cat: &'static str,
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let (Some(rec), Some(start)) = (self.rec, self.start) {
            let dur = start.elapsed().as_secs_f64();
            rec.record_span(self.lane, self.cat, self.name, start, dur);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::disabled();
        {
            let _g = r.span(0, "task", "Pair");
        }
        r.count(0, "neighbor_rebuilds", 1.0);
        r.observe("step_latency_us", 12.0);
        r.push_step(StepSample::default());
        assert_eq!(r.event_count(), 0);
        assert_eq!(r.step_count(), 0);
        assert!(r.hist_summary("step_latency_us").is_none());
    }

    #[test]
    fn enabling_at_runtime_starts_recording() {
        let r = Recorder::disabled();
        r.set_enabled(true);
        {
            let _g = r.span(3, "task", "Neigh");
        }
        assert_eq!(r.event_count(), 1);
        r.with_state(|st| {
            assert_eq!(st.events[0].lane, 3);
            assert_eq!(st.events[0].name, "Neigh");
            assert!(st.events[0].dur_us >= 0.0);
        });
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let r = Recorder::default();
        r.count(0, "rebuilds", 1.0);
        r.count(0, "rebuilds", 2.0);
        r.gauge(0, "drift", 0.25);
        r.gauge(0, "drift", 0.5);
        assert_eq!(r.counter_value("rebuilds"), Some(3.0));
        assert_eq!(r.counter_value("drift"), Some(0.5));
        assert_eq!(r.event_count(), 4);
    }

    #[test]
    fn event_cap_drops_and_counts() {
        let r = Recorder::new(ObserveConfig {
            max_events: 2,
            ..ObserveConfig::default()
        });
        for _ in 0..5 {
            r.instant(0, "task", "tick");
        }
        assert_eq!(r.event_count(), 2);
        r.with_state(|st| assert_eq!(st.dropped_events, 3));
    }

    #[test]
    fn explicit_timestamp_spans_take_virtual_time() {
        let r = Recorder::default();
        r.record_span_at(7, "mpi", "MPI_Wait", 1000.0, 250.0);
        r.with_state(|st| {
            assert_eq!(st.events[0].ts_us, 1000.0);
            assert_eq!(st.events[0].dur_us, 250.0);
            assert_eq!(st.events[0].lane, 7);
        });
    }

    #[test]
    fn snapshot_copies_all_retained_state() {
        let r = Recorder::default();
        r.set_lane_name(0, "engine");
        r.record_span_at(0, "task", "Pair", 0.0, 10.0);
        r.count(0, "neighbor_rebuilds", 2.0);
        r.observe("step_latency_us", 12.0);
        r.push_step(StepSample {
            step: 7,
            ..StepSample::default()
        });
        let snap = r.snapshot();
        assert_eq!(snap.events.len(), 2, "span + counter event");
        assert_eq!(snap.steps.len(), 1);
        assert_eq!(snap.steps[0].step, 7);
        assert_eq!(snap.total_steps, 1);
        assert_eq!(snap.evicted_steps, 0);
        assert_eq!(snap.counters.get("neighbor_rebuilds"), Some(&2.0));
        assert_eq!(snap.hists["step_latency_us"].count, 1);
        assert_eq!(snap.lanes.get(&0).map(String::as_str), Some("engine"));
        // The snapshot is a copy: further recording does not mutate it.
        r.count(0, "neighbor_rebuilds", 1.0);
        assert_eq!(snap.counters.get("neighbor_rebuilds"), Some(&2.0));
    }

    #[test]
    fn clone_shares_the_sink() {
        let r = Recorder::default();
        let r2 = r.clone();
        r2.instant(0, "task", "from-clone");
        assert_eq!(r.event_count(), 1);
    }
}
