//! # md-observe — per-step tracing, counters, and trace export
//!
//! Observability layer for the MD engine and the virtual cluster, built for
//! the paper's characterization workflow ("Characterizing Molecular Dynamics
//! Simulation on Commodity Platforms", IISWC 2022): the study's core output
//! is a per-task time breakdown (LAMMPS' `Pair`/`Bond`/`Kspace`/`Neigh`/
//! `Comm`/`Modify`/`Output`/`Other` taxonomy) plus per-rank MPI timelines,
//! so this crate records exactly those shapes and exports them in formats a
//! performance engineer can open directly.
//!
//! Pieces:
//!
//! - [`Recorder`] — shared sink for typed spans, counters, gauges, and
//!   histograms. Cloning is an `Arc` bump. When disabled, every hook is a
//!   single relaxed atomic load: no allocation, no lock, no clock read, so
//!   the engine keeps its instrumentation wired permanently.
//! - [`StepSeries`] / [`StepSample`] — ring-buffered per-timestep series of
//!   the eight task timings plus engine counters (neighbor rebuilds, ghost
//!   counts, pair-interaction counts, energy drift).
//! - [`LogHistogram`] — log-bucketed latency/interval distributions with
//!   p50/p95/p99 summaries.
//! - [`export`] — Chrome `trace_event` JSON (one lane per virtual rank,
//!   viewable in `chrome://tracing` / Perfetto), JSONL metrics, and a
//!   human-readable end-of-run profile report.
//! - [`Json`] — a small strict JSON parser so tests can validate exported
//!   traces without external dependencies.
//!
//! md-observe is a leaf crate: the engine crates depend on it, never the
//! reverse. The [`TASK_LABELS`] order mirrors `md_core::TaskKind::ALL` and
//! is cross-checked by a test on the md-core side.

pub mod export;
pub mod hist;
pub mod json;
pub mod recorder;
pub mod series;

pub use export::{chrome_trace_json, metrics_jsonl, text_report};
pub use hist::{HistSummary, LogHistogram};
pub use json::Json;
pub use recorder::{ObserveConfig, Phase, Recorder, SpanGuard, TraceEvent};
pub use series::{StepSample, StepSeries, NUM_TASKS, TASK_LABELS};
