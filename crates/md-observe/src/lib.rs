//! # md-observe — per-step tracing, counters, and trace export
//!
//! Observability layer for the MD engine and the virtual cluster, built for
//! the paper's characterization workflow ("Characterizing Molecular Dynamics
//! Simulation on Commodity Platforms", IISWC 2022): the study's core output
//! is a per-task time breakdown (LAMMPS' `Pair`/`Bond`/`Kspace`/`Neigh`/
//! `Comm`/`Modify`/`Output`/`Other` taxonomy) plus per-rank MPI timelines,
//! so this crate records exactly those shapes and exports them in formats a
//! performance engineer can open directly.
//!
//! Pieces:
//!
//! - [`Recorder`] — shared sink for typed spans, counters, gauges, and
//!   histograms. Cloning is an `Arc` bump. When disabled, every hook is a
//!   single relaxed atomic load: no allocation, no lock, no clock read, so
//!   the engine keeps its instrumentation wired permanently.
//! - [`StepSeries`] / [`StepSample`] — ring-buffered per-timestep series of
//!   the eight task timings plus engine counters (neighbor rebuilds, ghost
//!   counts, pair-interaction counts, energy drift).
//! - [`LogHistogram`] — log-bucketed latency/interval distributions with
//!   p50/p95/p99 summaries.
//! - [`export`] — Chrome `trace_event` JSON (one lane per virtual rank,
//!   viewable in `chrome://tracing` / Perfetto), JSONL metrics, and a
//!   human-readable end-of-run profile report.
//! - [`Json`] — a small strict JSON parser so tests can validate exported
//!   traces without external dependencies.
//!
//! md-observe is a leaf crate: the engine crates depend on it, never the
//! reverse. The [`TASK_LABELS`] order mirrors `md_core::TaskKind::ALL` and
//! is cross-checked by a test on the md-core side.
//!
//! ## Counter-naming convention
//!
//! Counters and gauges share one flat namespace across every crate that
//! holds a [`Recorder`] clone, so names must carry a subsystem prefix:
//!
//! - `health_*` — md-resilience watchdog events
//!   (`health_nonfinite_force`, `health_energy_drift`, ...)
//! - `fault_*` — injected-fault occurrences
//!   (`fault_rank_stall`, `fault_rank_slow`, `fault_halo_drop`, ...)
//! - `recovery_*` — recovery-ladder actions
//!   (`recovery_rollback`, `recovery_mitigation`)
//! - `insight_*` — md-insight analysis outputs (`insight_findings`)
//! - `imbalance_*` — md-insight load-imbalance attribution
//!   (`imbalance_suspect_rank`, `imbalance_worst_varavg_pct`)
//! - `gpu_*` — GPU-model device lanes and PCIe traffic
//!   (`gpu_pcie_htod_bytes`, `gpu_pcie_dtoh_bytes`)
//!
//! Three engine-core counters predate the convention and are grandfathered
//! as exact names: `neighbor_rebuilds`, `pair_interactions`,
//! `energy_drift`. [`names::counter_name_allowed`] is the machine-checkable
//! form; `tests/insight_analysis.rs` asserts it over the counters of a real
//! instrumented run.

pub mod export;
pub mod hist;
pub mod json;
pub mod names;
pub mod recorder;
pub mod series;

pub use export::{chrome_trace_json, metrics_jsonl, text_report};
pub use hist::{HistSummary, LogHistogram};
pub use json::Json;
pub use names::{counter_name_allowed, ALLOWED_COUNTER_PREFIXES, ENGINE_COUNTER_NAMES};
pub use recorder::{ObserveConfig, ObserveSnapshot, Phase, Recorder, SpanGuard, TraceEvent};
pub use series::{StepSample, StepSeries, NUM_TASKS, TASK_LABELS};
