//! Log-bucketed histograms with quantile summaries.
//!
//! Buckets are quarter-powers-of-two: bucket `i` covers
//! `[2^(i/4), 2^((i+1)/4))` in the measured unit, giving ≤ ~19% relative
//! quantile error over an enormous dynamic range with a few hundred fixed
//! buckets and no allocation per observation — the structure the paper's
//! per-step latency and rebuild-interval distributions need.

/// Number of quarter-log2 buckets (covers ~2^64 of dynamic range).
const BUCKETS: usize = 256;

/// Smallest resolvable value; everything below lands in bucket 0.
const MIN_VALUE: f64 = 1e-3;

/// A fixed-size log-bucketed histogram of non-negative samples.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: 0.0,
        }
    }
}

/// Quantile and moment summary of a [`LogHistogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (bucket-interpolated).
    pub p50: f64,
    /// 95th percentile (bucket-interpolated).
    pub p95: f64,
    /// 99th percentile (bucket-interpolated).
    pub p99: f64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    fn bucket_of(value: f64) -> usize {
        if value <= MIN_VALUE {
            return 0;
        }
        let idx = (4.0 * (value / MIN_VALUE).log2()).floor() as isize;
        idx.clamp(0, BUCKETS as isize - 1) as usize
    }

    /// Lower edge of bucket `i`.
    fn bucket_lo(i: usize) -> f64 {
        MIN_VALUE * 2f64.powf(i as f64 / 4.0)
    }

    /// Records one sample (negative and non-finite samples are ignored).
    #[inline]
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() || value < 0.0 {
            return;
        }
        self.counts[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`), interpolated within its bucket;
    /// `0.0` for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                // Linear interpolation inside the bucket.
                let frac = (target - seen) as f64 / c as f64;
                let lo = Self::bucket_lo(i);
                let hi = Self::bucket_lo(i + 1);
                return (lo + frac * (hi - lo)).clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Full summary (zeroes when empty).
    pub fn summary(&self) -> HistSummary {
        if self.count == 0 {
            return HistSummary {
                count: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        HistSummary {
            count: self.count,
            min: self.min,
            max: self.max,
            mean: self.sum / self.count as f64,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zero() {
        let h = LogHistogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.observe(i as f64);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1000.0);
        // Log buckets guarantee ≤ 2^(1/4)-1 ≈ 19% relative error.
        assert!((s.p50 / 500.0 - 1.0).abs() < 0.2, "p50 {}", s.p50);
        assert!((s.p95 / 950.0 - 1.0).abs() < 0.2, "p95 {}", s.p95);
        assert!((s.p99 / 990.0 - 1.0).abs() < 0.2, "p99 {}", s.p99);
        assert!((s.mean - 500.5).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = LogHistogram::new();
        for i in 0..500 {
            h.observe(0.5 + (i % 97) as f64 * 3.0);
        }
        let mut prev = 0.0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn merge_is_additive() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for i in 1..100 {
            a.observe(i as f64);
            b.observe(1000.0 + i as f64);
        }
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(), a.count() + b.count());
        assert_eq!(m.summary().max, b.summary().max);
        assert_eq!(m.summary().min, a.summary().min);
    }

    #[test]
    fn empty_histogram_quantiles_and_merge_stay_empty() {
        let h = LogHistogram::new();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0.0, "quantile({q}) of empty");
        }
        let s = h.summary();
        assert_eq!((s.count, s.min, s.max, s.mean), (0, 0.0, 0.0, 0.0));
        assert_eq!((s.p50, s.p95, s.p99), (0.0, 0.0, 0.0));
        // Merging two empties is still empty.
        let mut m = LogHistogram::new();
        m.merge(&h);
        assert_eq!(m.count(), 0);
        assert_eq!(m.summary(), LogHistogram::new().summary());
    }

    #[test]
    fn single_sample_quantiles_equal_the_sample() {
        let mut h = LogHistogram::new();
        h.observe(37.5);
        let s = h.summary();
        assert_eq!(s.count, 1);
        // The clamp to [min, max] collapses every quantile of a one-sample
        // histogram onto the sample itself, exactly.
        assert_eq!(s.p50, 37.5);
        assert_eq!(s.p95, 37.5);
        assert_eq!(s.p99, 37.5);
        assert_eq!(s.min, 37.5);
        assert_eq!(s.max, 37.5);
        assert_eq!(s.mean, 37.5);
    }

    #[test]
    fn merge_preserves_counts_and_moments() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for i in 0..37 {
            a.observe(1.0 + i as f64);
        }
        for i in 0..11 {
            b.observe(500.0 + i as f64);
        }
        let (ca, cb) = (a.count(), b.count());
        let sum_ab = a.summary().mean * ca as f64 + b.summary().mean * cb as f64;
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(), ca + cb, "total count preserved");
        assert_eq!(m.summary().count, 48);
        assert!(
            (m.summary().mean * 48.0 - sum_ab).abs() < 1e-9,
            "sum preserved"
        );
        assert_eq!(m.summary().min, 1.0);
        assert_eq!(m.summary().max, 510.0);
        // Merging into an empty histogram is a plain copy of the counts.
        let mut empty = LogHistogram::new();
        empty.merge(&a);
        assert_eq!(empty.count(), ca);
        assert_eq!(empty.summary().min, a.summary().min);
    }

    #[test]
    fn ignores_junk_samples() {
        let mut h = LogHistogram::new();
        h.observe(f64::NAN);
        h.observe(-1.0);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 0);
    }
}
