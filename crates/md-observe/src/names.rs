//! The counter-naming convention.
//!
//! Counters and gauges registered through [`crate::Recorder::count`] /
//! [`crate::Recorder::gauge`] share one flat namespace across the engine,
//! the resilience layer, and the analysis layer, so names carry a subsystem
//! prefix (see the crate-level docs for the full convention):
//!
//! | prefix       | owner          | examples                                |
//! |--------------|----------------|-----------------------------------------|
//! | `health_`    | md-resilience  | `health_nonfinite_force`                |
//! | `fault_`     | md-resilience  | `fault_rank_slow`, `fault_halo_drop`    |
//! | `recovery_`  | md-resilience  | `recovery_rollback`                     |
//! | `insight_`   | md-insight     | `insight_findings`                      |
//! | `imbalance_` | md-insight     | `imbalance_worst_varavg_pct`            |
//! | `gpu_`       | md-model       | `gpu_pcie_htod_bytes`                   |
//! | `comm_`      | md-parallel    | `comm_timeout`, `comm_retry`            |
//!
//! Three engine-core counters predate the convention and are grandfathered
//! as exact names: `neighbor_rebuilds`, `pair_interactions`, `energy_drift`.
//! Anything else is a convention violation;
//! [`counter_name_allowed`] is the single source of truth and is asserted
//! over every counter of a real instrumented run by
//! `tests/insight_analysis.rs`.

/// Subsystem prefixes a counter or gauge name may start with.
pub const ALLOWED_COUNTER_PREFIXES: [&str; 7] = [
    "health_",
    "fault_",
    "recovery_",
    "insight_",
    "imbalance_",
    "gpu_",
    "comm_",
];

/// Engine-core counter names that predate the prefix convention.
pub const ENGINE_COUNTER_NAMES: [&str; 3] =
    ["neighbor_rebuilds", "pair_interactions", "energy_drift"];

/// Whether `name` follows the counter-naming convention: one of the
/// [`ALLOWED_COUNTER_PREFIXES`] or an exact [`ENGINE_COUNTER_NAMES`] entry.
pub fn counter_name_allowed(name: &str) -> bool {
    ENGINE_COUNTER_NAMES.contains(&name)
        || ALLOWED_COUNTER_PREFIXES.iter().any(|p| name.starts_with(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every counter/gauge name the production crates register today. New
    /// call sites must be added here (and follow the convention) — this is
    /// the registry half of the satellite check; the integration half
    /// asserts a live run's counter map in `tests/insight_analysis.rs`.
    const PRODUCTION_COUNTERS: [&str; 31] = [
        "neighbor_rebuilds",
        "pair_interactions",
        "energy_drift",
        "health_nonfinite_force",
        "health_nonfinite_state",
        "health_displacement_spike",
        "health_energy_drift",
        "health_temperature_spike",
        "health_escaped_atom",
        "health_step_error",
        "recovery_rollback",
        "recovery_mitigation",
        "fault_rank_stall",
        "fault_rank_slow",
        "fault_halo_drop",
        "fault_halo_dup",
        "fault_rank_crash",
        "fault_halo_corrupt",
        "health_rank_failed",
        "recovery_shrink",
        "comm_timeout",
        "comm_corrupt",
        "comm_retry",
        "comm_budget_exhausted",
        "comm_exchange_ok",
        "imbalance_repartitions",
        "insight_findings",
        "imbalance_suspect_rank",
        "imbalance_worst_varavg_pct",
        "gpu_pcie_htod_bytes",
        "gpu_pcie_dtoh_bytes",
    ];

    #[test]
    fn every_registered_counter_matches_an_allowed_prefix() {
        for name in PRODUCTION_COUNTERS {
            assert!(
                counter_name_allowed(name),
                "{name} violates the counter-naming convention"
            );
        }
    }

    #[test]
    fn off_convention_names_are_rejected() {
        for name in ["rebuilds", "drift", "", "healthiness", "Insight_x"] {
            assert!(!counter_name_allowed(name), "{name:?} should be rejected");
        }
    }
}
