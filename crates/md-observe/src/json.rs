//! A minimal JSON value model and recursive-descent parser.
//!
//! The offline container has no serde_json, but the exporter tests must
//! parse the emitted Chrome trace back and validate it structurally. This
//! parser supports the full JSON grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null) and is strict about trailing garbage.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted keys; duplicate keys keep the last value).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => write!(f, "{}", escape(s)),
            Json::Arr(v) => {
                f.write_str("[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{x}")?;
                }
                f.write_str("]")
            }
            Json::Obj(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// JSON-escapes a string, with surrounding quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, val: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(val)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if matches!(b.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Collect a run of plain UTF-8 bytes.
                let start = *pos;
                while let Some(&n) = b.get(*pos) {
                    if n == b'"' || n == b'\\' {
                        break;
                    }
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if matches!(b.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut out = BTreeMap::new();
    skip_ws(b, pos);
    if matches!(b.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        out.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc =
            r#"{"traceEvents":[{"name":"Pair","ts":1.5,"dur":2,"args":{}}],"ok":true,"n":null}"#;
        let v = Json::parse(doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("Pair"));
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("n"), Some(&Json::Null));
    }

    #[test]
    fn escapes_roundtrip() {
        let original = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("[{}]", escape(original));
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.as_array().unwrap()[0].as_str(), Some(original));
    }

    #[test]
    fn display_roundtrips() {
        let doc = r#"{"a":[1,2.5,-3e2],"b":"x","c":{"d":false}}"#;
        let v = Json::parse(doc).unwrap();
        let v2 = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("[1] x").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }
}
