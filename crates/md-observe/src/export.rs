//! Exporters: Chrome `trace_event` JSON, JSONL metrics, and a text report.
//!
//! The Chrome trace opens directly in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev): one timeline lane (`tid`) per
//! virtual rank (lane 0 is the real engine), spans categorized by task /
//! MPI function / k-space kernel, counter tracks for the engine counters.
//! The JSONL export is one self-describing object per line (steps, then
//! histogram summaries, then counters) for downstream pandas/jq analysis.

use crate::json::escape;
use crate::recorder::{Phase, Recorder, TraceEvent};
use crate::series::{StepSample, NUM_TASKS, TASK_LABELS};
use std::fmt::Write as _;

/// Formats one event as a Chrome `trace_event` object.
fn chrome_event(ev: &TraceEvent, pid: u32) -> String {
    let mut out = String::with_capacity(128);
    out.push('{');
    let _ = write!(
        out,
        "\"name\":{},\"cat\":{},\"pid\":{pid},\"tid\":{}",
        escape(ev.name),
        escape(ev.cat),
        ev.lane,
    );
    match ev.phase {
        Phase::Span => {
            let _ = write!(
                out,
                ",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3}",
                ev.ts_us, ev.dur_us
            );
        }
        Phase::Instant => {
            let _ = write!(out, ",\"ph\":\"i\",\"ts\":{:.3},\"s\":\"t\"", ev.ts_us);
        }
        Phase::Counter => {
            let _ = write!(
                out,
                ",\"ph\":\"C\",\"ts\":{:.3},\"args\":{{\"value\":{}}}",
                ev.ts_us, ev.value,
            );
        }
    }
    out.push('}');
    out
}

/// Renders the recorder's events as a complete Chrome trace JSON document.
///
/// Lanes are announced with `thread_name` metadata events, so the rank
/// labels appear in the tracer UI. Span events within a lane are sorted by
/// start timestamp (Chrome requires per-thread monotonicity).
pub fn chrome_trace_json(rec: &Recorder) -> String {
    const PID: u32 = 1;
    rec.with_state(|st| {
        let mut parts: Vec<String> = Vec::with_capacity(st.events.len() + st.lanes.len() + 1);
        parts.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\
             \"args\":{{\"name\":\"verlette\"}}}}"
        ));
        for (lane, name) in &st.lanes {
            parts.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{lane},\
                 \"args\":{{\"name\":{}}}}}",
                escape(name),
            ));
        }
        let mut events: Vec<&TraceEvent> = st.events.iter().collect();
        events.sort_by(|a, b| {
            (a.lane, a.ts_us)
                .partial_cmp(&(b.lane, b.ts_us))
                .expect("finite timestamps")
        });
        for ev in events {
            parts.push(chrome_event(ev, PID));
        }
        let mut out = String::with_capacity(parts.iter().map(|p| p.len() + 2).sum::<usize>() + 64);
        out.push_str("{\"traceEvents\":[");
        for (i, p) in parts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(p);
        }
        let _ = write!(
            out,
            "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"droppedEvents\":{}}}}}",
            st.dropped_events,
        );
        out
    })
}

fn jsonl_step(s: &StepSample) -> String {
    let mut out = String::with_capacity(192);
    let _ = write!(
        out,
        "{{\"kind\":\"step\",\"step\":{},\"wall_seconds\":{:.9},\"neighbor_rebuild\":{},\
         \"ghost_atoms\":{},\"pair_interactions\":{},\"energy_drift\":{:.6e}",
        s.step,
        s.wall_seconds,
        s.neighbor_rebuild,
        s.ghost_atoms,
        s.pair_interactions,
        s.energy_drift,
    );
    out.push_str(",\"task_seconds\":{");
    for (i, label) in TASK_LABELS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{:.9}", escape(label), s.task_seconds[i]);
    }
    out.push_str("}}");
    out
}

/// Renders the recorder's metrics as JSONL: step samples, histogram
/// summaries, and counters — one JSON object per line.
pub fn metrics_jsonl(rec: &Recorder) -> String {
    rec.with_state(|st| {
        let mut out = String::new();
        for s in st.steps.iter() {
            out.push_str(&jsonl_step(s));
            out.push('\n');
        }
        for (name, hist) in &st.hists {
            let s = hist.summary();
            let _ = writeln!(
                out,
                "{{\"kind\":\"histogram\",\"name\":{},\"count\":{},\"min\":{:.6},\
                 \"mean\":{:.6},\"p50\":{:.6},\"p95\":{:.6},\"p99\":{:.6},\"max\":{:.6}}}",
                escape(name),
                s.count,
                s.min,
                s.mean,
                s.p50,
                s.p95,
                s.p99,
                s.max,
            );
        }
        for (name, value) in &st.counters {
            let _ = writeln!(
                out,
                "{{\"kind\":\"counter\",\"name\":{},\"value\":{value}}}",
                escape(name),
            );
        }
        if st.steps.evicted() > 0 {
            let _ = writeln!(
                out,
                "{{\"kind\":\"note\",\"evicted_steps\":{},\"total_steps\":{}}}",
                st.steps.evicted(),
                st.steps.total_pushed(),
            );
        }
        out
    })
}

/// Renders a human-readable end-of-run profile: per-task totals over the
/// retained steps, histogram quantiles, counters, and coverage notes.
pub fn text_report(rec: &Recorder) -> String {
    rec.with_state(|st| {
        let mut out = String::new();
        let _ = writeln!(out, "== md-observe profile ==");
        let retained = st.steps.len();
        let _ = writeln!(
            out,
            "steps: {retained} retained of {} recorded ({} evicted), {} trace events ({} dropped)",
            st.steps.total_pushed(),
            st.steps.evicted(),
            st.events.len(),
            st.dropped_events,
        );

        if retained > 0 {
            let mut totals = [0.0f64; NUM_TASKS];
            let mut wall = 0.0;
            let mut rebuilds = 0u64;
            for s in st.steps.iter() {
                for (t, v) in totals.iter_mut().zip(&s.task_seconds) {
                    *t += v;
                }
                wall += s.wall_seconds;
                rebuilds += s.neighbor_rebuild as u64;
            }
            let task_total: f64 = totals.iter().sum();
            let _ = writeln!(
                out,
                "\nper-task time over retained steps (wall {:.4}s, {} rebuilds):",
                wall, rebuilds,
            );
            for (label, &secs) in TASK_LABELS.iter().zip(&totals) {
                if secs > 0.0 {
                    let _ = writeln!(
                        out,
                        "  {label:<8} {secs:>12.6}s  {:>5.1}%",
                        if task_total > 0.0 {
                            100.0 * secs / task_total
                        } else {
                            0.0
                        },
                    );
                }
            }
        }

        if !st.hists.is_empty() {
            let _ = writeln!(out, "\nhistograms (p50 / p95 / p99):");
            for (name, hist) in &st.hists {
                let s = hist.summary();
                let _ = writeln!(
                    out,
                    "  {name:<24} n={:<8} {:>10.3} / {:>10.3} / {:>10.3}  (min {:.3}, max {:.3})",
                    s.count, s.p50, s.p95, s.p99, s.min, s.max,
                );
            }
        }

        if !st.counters.is_empty() {
            let _ = writeln!(out, "\ncounters:");
            for (name, value) in &st.counters {
                let _ = writeln!(out, "  {name:<24} {value}");
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::recorder::{ObserveConfig, Recorder};
    use crate::series::StepSample;

    fn populated_recorder() -> Recorder {
        let rec = Recorder::new(ObserveConfig::default());
        rec.set_lane_name(0, "engine");
        rec.set_lane_name(1, "rank 1");
        rec.record_span_at(0, "task", "Pair", 0.0, 10.0);
        rec.record_span_at(0, "task", "Neigh", 10.0, 5.0);
        rec.record_span_at(1, "mpi", "MPI_Wait", 2.0, 4.0);
        rec.count(0, "neighbor_rebuilds", 1.0);
        rec.observe("step_latency_us", 15.0);
        rec.push_step(StepSample {
            step: 1,
            task_seconds: [0.0, 0.0, 0.0, 1e-6, 2e-6, 0.0, 0.0, 1e-5],
            wall_seconds: 1.4e-5,
            neighbor_rebuild: true,
            ghost_atoms: 12,
            pair_interactions: 640,
            energy_drift: 1e-9,
        });
        rec
    }

    #[test]
    fn chrome_trace_parses_and_has_lanes() {
        let rec = populated_recorder();
        let doc = chrome_trace_json(&rec);
        let v = Json::parse(&doc).expect("valid JSON");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        // 1 process_name + 2 thread_name + 3 spans + 1 counter.
        assert_eq!(events.len(), 7);
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert!(names.contains(&"Pair"));
        assert!(names.contains(&"MPI_Wait"));
        assert!(names.contains(&"thread_name"));
    }

    #[test]
    fn chrome_trace_is_monotonic_per_lane() {
        let rec = Recorder::default();
        // Recorded out of order on purpose.
        rec.record_span_at(0, "task", "B", 50.0, 1.0);
        rec.record_span_at(0, "task", "A", 10.0, 1.0);
        let doc = chrome_trace_json(&rec);
        let v = Json::parse(&doc).unwrap();
        let ts: Vec<f64> = v
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .map(|e| e.get("ts").unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(ts, vec![10.0, 50.0]);
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let rec = populated_recorder();
        let doc = metrics_jsonl(&rec);
        let mut kinds = Vec::new();
        for line in doc.lines() {
            let v = Json::parse(line).expect("each JSONL line is valid JSON");
            kinds.push(v.get("kind").unwrap().as_str().unwrap().to_string());
        }
        assert!(kinds.contains(&"step".to_string()));
        assert!(kinds.contains(&"histogram".to_string()));
        assert!(kinds.contains(&"counter".to_string()));
    }

    #[test]
    fn text_report_mentions_tasks_and_counters() {
        let rec = populated_recorder();
        let report = text_report(&rec);
        assert!(report.contains("Pair"));
        assert!(report.contains("neighbor_rebuilds"));
        assert!(report.contains("p50"));
    }

    #[test]
    fn empty_recorder_exports_cleanly() {
        let rec = Recorder::default();
        let doc = chrome_trace_json(&rec);
        assert!(Json::parse(&doc).is_ok());
        assert_eq!(metrics_jsonl(&rec), "");
        assert!(text_report(&rec).contains("0 trace events"));
    }
}
