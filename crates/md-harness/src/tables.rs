//! The paper's three tables.

use crate::context::ExperimentContext;
use crate::render::{fnum, TextTable};
use crate::Figure;
use md_core::Result;
use md_core::TaskKind;
use md_model::Instance;
use md_workloads::{Benchmark, TAXONOMY};

/// Table 1: the computational tasks of a LAMMPS timestep.
pub fn table1() -> Figure {
    let mut t = TextTable::new(["Task", "Step", "Description"]);
    let rows: [(&str, &str, &str); 8] = [
        ("Bond", "VII", "Computation of bonded forces"),
        (
            "Comm",
            "IV",
            "Inter-processor communication of atoms and their properties",
        ),
        (
            "Kspace",
            "VI",
            "Computation of long-range interaction forces",
        ),
        ("Modify", "II", "Fixes and computes invoked by fixes"),
        ("Neigh", "III", "Neighbor list construction"),
        (
            "Output",
            "VIII",
            "Output of thermodynamic info and dump files",
        ),
        ("Pair", "V", "Computation of pairwise potential"),
        ("Other", "-", "All other tasks"),
    ];
    for (task, step, desc) in rows {
        t.row([task, step, desc]);
    }
    debug_assert_eq!(TaskKind::ALL.len(), 8);
    Figure {
        id: "table1".to_string(),
        caption: "Table 1: steps of a LAMMPS simulation (task taxonomy)".to_string(),
        table: t,
    }
}

/// Table 2: suite characteristics — the static deck parameters plus the
/// *measured* neighbors/atom of this implementation next to the paper's.
///
/// # Errors
///
/// Propagates profiling failures.
pub fn table2(ctx: &ExperimentContext) -> Result<Figure> {
    let mut t = TextTable::new([
        "Benchmark",
        "Min atoms",
        "Force field",
        "Cutoff",
        "Neighbor skin",
        "Nbr/atom (paper)",
        "Nbr/atom (measured)",
        "pair_modify",
        "kspace_style",
        "Kspace error",
        "Integration",
    ]);
    for info in TAXONOMY {
        let bench = Benchmark::parse(info.benchmark)?;
        let measured = ctx.profile(bench)?.cutoff_neighbors;
        t.row([
            info.benchmark.to_string(),
            format!("{}k", info.min_atoms / 1000),
            info.force_field.to_string(),
            info.cutoff.to_string(),
            info.neighbor_skin.to_string(),
            fnum(info.neighbors_per_atom),
            fnum(measured),
            info.pair_modify.to_string(),
            info.kspace_style.to_string(),
            info.kspace_error.to_string(),
            info.integration.to_string(),
        ]);
    }
    Ok(Figure {
        id: "table2".to_string(),
        caption: "Table 2: main characteristics of the benchmark suite".to_string(),
        table: t,
    })
}

/// Table 3: the two evaluation instances.
pub fn table3() -> Figure {
    let mut t = TextTable::new(["Spec", "CPU Inst.", "GPU Inst."]);
    let c = Instance::cpu_instance();
    let g = Instance::gpu_instance();
    let gg = g.gpu.expect("gpu instance has devices");
    t.row(["CPU", c.cpu.model, g.cpu.model]);
    t.row([
        "Cores".to_string(),
        c.cpu.cores.to_string(),
        g.cpu.cores.to_string(),
    ]);
    t.row([
        "Threads".to_string(),
        c.cpu.threads.to_string(),
        g.cpu.threads.to_string(),
    ]);
    t.row([
        "Freq (turbo)".to_string(),
        format!("{} GHz ({} GHz)", c.cpu.freq_ghz, c.cpu.turbo_ghz),
        format!("{} GHz ({} GHz)", g.cpu.freq_ghz, g.cpu.turbo_ghz),
    ]);
    t.row([
        "L1 / L2 / L3".to_string(),
        format!(
            "{} KB / {} KB / {} MB",
            c.cpu.l1_kib, c.cpu.l2_kib, c.cpu.l3_mib
        ),
        format!(
            "{} KB / {} KB / {} MB",
            g.cpu.l1_kib, g.cpu.l2_kib, g.cpu.l3_mib
        ),
    ]);
    t.row([
        "CPU TDP".to_string(),
        format!("{} W", c.cpu.tdp_w),
        format!("{} W", g.cpu.tdp_w),
    ]);
    t.row([
        "Sockets".to_string(),
        c.sockets.to_string(),
        g.sockets.to_string(),
    ]);
    t.row([
        "Memory".to_string(),
        format!("{} GB DDR4", c.memory_gib),
        format!("{} GB DDR4", g.memory_gib),
    ]);
    t.row(["GPU", "-", gg.model]);
    t.row(["GPU count".to_string(), "-".to_string(), g.gpus.to_string()]);
    t.row(["SMs".to_string(), "-".to_string(), gg.sms.to_string()]);
    t.row([
        "GPU memory".to_string(),
        "-".to_string(),
        format!("{} GB HBM", gg.memory_gib),
    ]);
    t.row([
        "GPU TDP".to_string(),
        "-".to_string(),
        format!("{} W", gg.tdp_w),
    ]);
    Figure {
        id: "table3".to_string(),
        caption: "Table 3: CPU and GPU instance descriptions".to_string(),
        table: t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_eight_tasks() {
        let f = table1();
        assert_eq!(f.table.len(), 8);
    }

    #[test]
    fn table3_reports_both_instances() {
        let f = table3();
        let s = f.table.to_string();
        assert!(s.contains("8358"));
        assert!(s.contains("V100"));
    }
}
