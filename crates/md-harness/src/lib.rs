//! # md-harness — the characterization harness
//!
//! Regenerates every table and figure of *"Characterizing Molecular Dynamics
//! Simulation on Commodity Platforms"* (IISWC 2022) from this repository's
//! engine + instance models. The structure mirrors the paper's automation
//! framework (their Figure 2): a *profiling* path measures real engine runs
//! (workload profiles, task ledgers), a *benchmarking* path sweeps the
//! parameter space through the calibrated CPU/GPU instance models, and a
//! renderer emits aligned text tables plus CSV files.
//!
//! ## Example
//!
//! ```rust,no_run
//! use md_harness::{ExperimentContext, Fidelity};
//!
//! # fn main() -> Result<(), md_core::CoreError> {
//! let ctx = ExperimentContext::new(Fidelity::Quick);
//! let fig = md_harness::figures::fig06(&ctx)?;
//! println!("{}", fig);
//! # Ok(())
//! # }
//! ```

pub mod context;
pub mod figures;
pub mod insight;
pub mod render;
pub mod tables;

pub use context::{ExperimentContext, Fidelity};
pub use render::TextTable;

/// One regenerated table or figure: an id (`fig06`, `table2`), the caption,
/// and the data series.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Stable identifier used for CSV filenames.
    pub id: String,
    /// Human-readable caption.
    pub caption: String,
    /// The data, one row per plotted point.
    pub table: TextTable,
}

impl std::fmt::Display for Figure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} ==", self.caption)?;
        write!(f, "{}", self.table)
    }
}
