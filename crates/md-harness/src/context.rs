//! The experiment context: caches measured profiles, generated systems, and
//! decomposition censuses so the figure generators and benches don't redo
//! expensive work.
//!
//! This mirrors the paper's automation framework (their Figure 2): the
//! "profiling experiment" path measures real runs; the "benchmarking
//! experiment" path sweeps the parameter space through the instance models.

use md_core::{PrecisionMode, Result, SimBox, V3};
use md_model::{
    CpuModel, CpuRunOptions, CpuRunResult, GpuModel, GpuRunOptions, GpuRunResult, WorkloadProfile,
};
use md_parallel::{Decomposition, WorkloadCensus};
use md_workloads::{build_positions, Benchmark};
use std::collections::HashMap;
use std::sync::Mutex;

/// Paper sweep: MPI process counts on the CPU instance.
pub const CPU_PROCS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];
/// Paper sweep: MPI process counts in the MPI-overhead figures (Figs. 4–5).
pub const MPI_PROCS: [usize; 5] = [4, 8, 16, 32, 64];
/// Paper sweep: GPU device counts.
pub const GPU_DEVICES: [usize; 5] = [1, 2, 4, 6, 8];
/// Paper sweep: k-space relative error thresholds (Section 7).
pub const KSPACE_ERRORS: [f64; 4] = [1e-4, 1e-5, 1e-6, 1e-7];

/// Steps of real simulation used to measure each benchmark's profile.
const PROFILE_STEPS: u64 = 30;
/// Deterministic seed for every deck in the harness.
pub const SEED: u64 = 2022;

/// Scales included in a run (1..=4 for the full paper sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Fidelity {
    /// All four paper sizes (32k..2048k atoms).
    Full,
    /// Only the two smaller sizes — quick CI runs.
    Quick,
}

impl Fidelity {
    /// The replication factors this fidelity sweeps.
    pub fn scales(self) -> &'static [usize] {
        match self {
            Fidelity::Full => &[1, 2, 3, 4],
            Fidelity::Quick => &[1, 2],
        }
    }
}

/// Caching experiment context.
pub struct ExperimentContext {
    fidelity: Fidelity,
    cpu_model: CpuModel,
    gpu_model: GpuModel,
    profiles: Mutex<HashMap<Benchmark, WorkloadProfile>>,
    #[allow(clippy::type_complexity)]
    systems: Mutex<HashMap<(Benchmark, usize), (SimBox, Vec<V3>)>>,
    #[allow(clippy::type_complexity)]
    censuses: Mutex<HashMap<(Benchmark, usize, usize), (Decomposition, WorkloadCensus)>>,
}

impl std::fmt::Debug for ExperimentContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentContext")
            .field("fidelity", &self.fidelity)
            .finish_non_exhaustive()
    }
}

impl ExperimentContext {
    /// Creates a context at the given fidelity.
    pub fn new(fidelity: Fidelity) -> Self {
        ExperimentContext {
            fidelity,
            cpu_model: CpuModel::new(),
            gpu_model: GpuModel::new(),
            profiles: Mutex::new(HashMap::new()),
            systems: Mutex::new(HashMap::new()),
            censuses: Mutex::new(HashMap::new()),
        }
    }

    /// The fidelity this context sweeps.
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// Replication factors in this context's sweeps.
    pub fn scales(&self) -> &'static [usize] {
        self.fidelity.scales()
    }

    /// The measured base profile of a benchmark (cached).
    ///
    /// # Errors
    ///
    /// Propagates deck construction failures.
    pub fn profile(&self, benchmark: Benchmark) -> Result<WorkloadProfile> {
        if let Some(p) = self.profiles.lock().expect("poisoned").get(&benchmark) {
            return Ok(p.clone());
        }
        let p = WorkloadProfile::measure(benchmark, PROFILE_STEPS, SEED)?;
        self.profiles
            .lock()
            .expect("poisoned")
            .insert(benchmark, p.clone());
        Ok(p)
    }

    /// Box and positions of a benchmark at a scale (cached).
    ///
    /// # Errors
    ///
    /// Propagates generator failures.
    pub fn system(&self, benchmark: Benchmark, scale: usize) -> Result<(SimBox, Vec<V3>)> {
        if let Some(s) = self
            .systems
            .lock()
            .expect("poisoned")
            .get(&(benchmark, scale))
        {
            return Ok(s.clone());
        }
        let mut s = build_positions(benchmark, scale, SEED)?;
        thermal_smear(&mut s.1, &s.0, SEED ^ 0x5eed);
        self.systems
            .lock()
            .expect("poisoned")
            .insert((benchmark, scale), s.clone());
        Ok(s)
    }

    /// Decomposition + census of a benchmark at a scale over `ranks` (cached).
    ///
    /// # Errors
    ///
    /// Propagates decomposition failures.
    pub fn census(
        &self,
        benchmark: Benchmark,
        scale: usize,
        ranks: usize,
    ) -> Result<(Decomposition, WorkloadCensus)> {
        let key = (benchmark, scale, ranks);
        if let Some(c) = self.censuses.lock().expect("poisoned").get(&key) {
            return Ok(c.clone());
        }
        let (bx, x) = self.system(benchmark, scale)?;
        let profile = self.profile(benchmark)?;
        let decomp = Decomposition::new(bx, ranks)?;
        let census = WorkloadCensus::measure(&decomp, &x, profile.ghost_cutoff);
        self.censuses
            .lock()
            .expect("poisoned")
            .insert(key, (decomp.clone(), census.clone()));
        Ok((decomp, census))
    }

    /// One modeled CPU run at the paper's defaults.
    ///
    /// # Errors
    ///
    /// Propagates model failures.
    pub fn cpu_run(
        &self,
        benchmark: Benchmark,
        scale: usize,
        ranks: usize,
    ) -> Result<CpuRunResult> {
        self.cpu_run_with(benchmark, scale, ranks, PrecisionMode::Mixed, None)
    }

    /// One modeled CPU run with precision and (for rhodo) an explicit
    /// k-space error threshold.
    ///
    /// # Errors
    ///
    /// Propagates model failures.
    pub fn cpu_run_with(
        &self,
        benchmark: Benchmark,
        scale: usize,
        ranks: usize,
        precision: PrecisionMode,
        kspace_error: Option<f64>,
    ) -> Result<CpuRunResult> {
        let mut profile = self.profile(benchmark)?.at_scale(scale)?;
        if let Some(err) = kspace_error {
            profile = profile.with_kspace_error(err)?;
        }
        let (decomp, census) = self.census(benchmark, scale, ranks)?;
        let opts = CpuRunOptions {
            ranks,
            precision,
            ..CpuRunOptions::default()
        };
        self.cpu_model
            .simulate_with_census(&profile, &decomp, &census, &opts)
    }

    /// One modeled GPU run at the paper's defaults.
    ///
    /// # Errors
    ///
    /// Propagates model failures (including unsupported benchmarks).
    pub fn gpu_run(&self, benchmark: Benchmark, scale: usize, gpus: usize) -> Result<GpuRunResult> {
        self.gpu_run_with(benchmark, scale, gpus, PrecisionMode::Mixed, None)
    }

    /// One modeled GPU run with precision and k-space error override.
    ///
    /// # Errors
    ///
    /// Propagates model failures.
    pub fn gpu_run_with(
        &self,
        benchmark: Benchmark,
        scale: usize,
        gpus: usize,
        precision: PrecisionMode,
        kspace_error: Option<f64>,
    ) -> Result<GpuRunResult> {
        let mut profile = self.profile(benchmark)?.at_scale(scale)?;
        if let Some(err) = kspace_error {
            profile = profile.with_kspace_error(err)?;
        }
        let ranks =
            (md_model::calib::RANKS_PER_GPU * gpus).min(md_model::calib::MAX_GPU_HOST_RANKS);
        let (_, census) = self.census(benchmark, scale, ranks)?;
        let opts = GpuRunOptions { gpus, precision };
        self.gpu_model
            .simulate_with_census(&profile, &census, &opts)
    }
}

/// Displaces positions by a small thermal amplitude (5% of the mean
/// inter-particle spacing) so the decomposition census reflects a *running*
/// system rather than a perfect generated lattice — without this, atoms
/// sitting exactly on subdomain boundaries produce spurious ±one-plane load
/// imbalance that thermal motion washes out in reality.
fn thermal_smear(x: &mut [md_core::V3], bx: &SimBox, seed: u64) {
    if x.is_empty() {
        return;
    }
    let spacing = (bx.volume() / x.len() as f64).cbrt();
    let sigma = 0.05 * spacing;
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64*; cheap, deterministic, good enough for a smear.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    for p in x.iter_mut() {
        p.x += sigma * next();
        p.y += sigma * next();
        p.z += sigma * next();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_are_reused() {
        let ctx = ExperimentContext::new(Fidelity::Quick);
        let p1 = ctx.profile(Benchmark::Lj).unwrap();
        let p2 = ctx.profile(Benchmark::Lj).unwrap();
        assert_eq!(p1, p2);
        let (d1, c1) = ctx.census(Benchmark::Lj, 1, 8).unwrap();
        let (_, c2) = ctx.census(Benchmark::Lj, 1, 8).unwrap();
        assert_eq!(c1.loads(), c2.loads());
        assert_eq!(d1.nranks(), 8);
    }

    #[test]
    fn quick_fidelity_limits_scales() {
        assert_eq!(Fidelity::Quick.scales(), &[1, 2]);
        assert_eq!(Fidelity::Full.scales(), &[1, 2, 3, 4]);
    }

    #[test]
    fn cpu_and_gpu_runs_work_end_to_end() {
        let ctx = ExperimentContext::new(Fidelity::Quick);
        let cpu = ctx.cpu_run(Benchmark::Lj, 1, 4).unwrap();
        assert!(cpu.ts_per_sec > 0.0);
        let gpu = ctx.gpu_run(Benchmark::Lj, 1, 1).unwrap();
        assert!(gpu.ts_per_sec > 0.0);
    }
}
