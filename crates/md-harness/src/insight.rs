//! Harness-side glue for md-insight: turns one modeled cluster run (plus
//! whatever the recorder retained from the real-engine run) into the
//! end-of-run characterization report, checks it against the per-deck
//! baseline under `baselines/`, and writes the export artifacts
//! (`report.txt`, `metrics.om`, `folded.txt`) for `--insight <dir>`.

use std::collections::BTreeMap;
use std::path::Path;

use md_core::TaskKind;
use md_insight::{
    folded_stacks, openmetrics, Baseline, Breakdown, CriticalPathSummary, DeviceCriticalPath,
    GpuAttribution, ImbalanceReport, InsightReport, MpiTable, RegressionConfig, RepartitionSummary,
    TrendEntry,
};
use md_model::gpu::GpuTimeline;
use md_model::CpuRunResult;
use md_observe::Recorder;

/// Builds the per-metric observations fed to the regression comparator:
/// modeled per-step cost of every task that does per-step work, plus the
/// total. Modeled costs are pure arithmetic over workload counts, so these
/// values are bit-deterministic and host-independent — safe to compare
/// against committed baselines.
pub fn observations(result: &CpuRunResult, steps: u64) -> BTreeMap<String, f64> {
    let steps = steps.max(1) as f64;
    let mut obs = BTreeMap::new();
    for (task, seconds) in result.tasks.iter() {
        // Other holds one-time init cost, not per-step work.
        if task != TaskKind::Other {
            obs.insert(format!("step_seconds.{}", task.label()), seconds / steps);
        }
    }
    obs.insert("step_seconds.total".to_string(), result.step_seconds);
    obs
}

/// Assembles the analysis sections from a modeled run (which must have been
/// produced with `collect_rank_stats`) and the recorder's retained step
/// samples from the real-engine run, then finalizes the findings list.
/// Regression is left to [`check_regression`] so callers without a
/// baseline directory can still analyze.
pub fn analyze(result: &CpuRunResult, recorder: &Recorder) -> InsightReport {
    let snapshot = recorder.snapshot();
    let mut report = InsightReport {
        model_breakdown: Some(Breakdown::from_ledger(&result.tasks, 0)),
        ..InsightReport::default()
    };
    if !snapshot.steps.is_empty() {
        report.breakdown = Some(Breakdown::from_step_samples(&snapshot.steps));
    }
    if !result.rank_tasks.is_empty() {
        report.imbalance = Some(ImbalanceReport::from_rank_ledgers(&result.rank_tasks));
    }
    if !result.rank_mpi.is_empty() {
        report.mpi = Some(MpiTable::from_rank_ledgers(&result.rank_mpi));
    }
    if !result.critical_path.is_empty() {
        report.critical = Some(CriticalPathSummary::from_steps(
            &result.critical_path,
            result.ranks,
        ));
    }
    report.repartition = RepartitionSummary::from_events(&result.repartitions);
    report.finalize();
    report
}

/// Attaches the GPU model's traced offload schedule to the report: the
/// per-device kernel/memcpy/idle breakdown and the host↔device critical
/// path, then re-finalizes so "memcpy-bound" findings rank next to the
/// imbalance ones.
pub fn attach_gpu(report: &mut InsightReport, timeline: &GpuTimeline) {
    report.gpu = Some(GpuAttribution::from_timeline(timeline));
    report.device_critical = Some(DeviceCriticalPath::from_timeline(timeline));
    report.finalize();
}

/// Compares the observations against `baselines_dir/<deck>.json` and stores
/// the verdict in the report (re-finalizing the findings). With `update`,
/// the run is absorbed into the baseline and saved — callers must refuse to
/// update when fault injection is active, or the baseline gets poisoned.
/// Returns whether any metric regressed.
pub fn check_regression(
    report: &mut InsightReport,
    deck: &str,
    obs: &BTreeMap<String, f64>,
    baselines_dir: &Path,
    update: bool,
) -> Result<bool, String> {
    let cfg = RegressionConfig::default();
    let mut baseline = Baseline::load(baselines_dir, deck)?.unwrap_or_else(|| Baseline::new(deck));
    let regression = baseline.compare(obs, &cfg);
    let regressed = regression.regressed;
    report.regression = Some(regression);
    report.finalize();
    if update {
        baseline.absorb(obs, &cfg);
        baseline.save(baselines_dir)?;
    }
    Ok(regressed)
}

/// Appends the run's observations to the per-deck trend history
/// (`baselines_dir/<deck>.history.jsonl`). Provenance comes from the
/// environment: `MD_COMMIT` (falling back to `GITHUB_SHA`) and `MD_HOST`
/// (falling back to `HOSTNAME`), each `unknown` when unset — so CI tags
/// entries without the harness shelling out to git.
pub fn append_trend(
    baselines_dir: &Path,
    deck: &str,
    obs: &BTreeMap<String, f64>,
    threads: usize,
) -> Result<(), String> {
    let var = |names: &[&str]| {
        names
            .iter()
            .find_map(|n| std::env::var(n).ok().filter(|v| !v.is_empty()))
            .unwrap_or_else(|| "unknown".to_string())
    };
    let entry = TrendEntry {
        commit: var(&["MD_COMMIT", "GITHUB_SHA"]),
        host: var(&["MD_HOST", "HOSTNAME"]),
        threads,
        metrics: obs.clone(),
    };
    md_insight::trend::append_entry(baselines_dir, deck, &entry)
}

/// Writes the `--insight <dir>` artifacts: the rendered report, an
/// OpenMetrics snapshot (after publishing the report's headline gauges),
/// and folded stacks for flamegraph tooling.
pub fn write_outputs(
    dir: &Path,
    report: &InsightReport,
    recorder: &Recorder,
) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    report.publish_counters(recorder);
    let snapshot = recorder.snapshot();
    for (name, content) in [
        ("report.txt", report.render()),
        ("metrics.om", openmetrics(&snapshot)),
        ("folded.txt", folded_stacks(&snapshot)),
    ] {
        let path = dir.join(name);
        std::fs::write(&path, content).map_err(|e| format!("{}: {e}", path.display()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_model::{CpuModel, CpuRunOptions, WorkloadProfile};
    use md_observe::ObserveConfig;
    use md_workloads::{build_positions, Benchmark};

    fn modeled_run(recorder: &Recorder) -> CpuRunResult {
        let profile = WorkloadProfile::measure(Benchmark::Lj, 10, 1).expect("profile");
        let (bx, x) = build_positions(Benchmark::Lj, 1, 1).expect("positions");
        let mut model = CpuModel::new();
        model.set_recorder(recorder.clone());
        let opts = CpuRunOptions {
            ranks: 4,
            sim_steps: 20,
            thermo_every: 10,
            collect_rank_stats: true,
            ..CpuRunOptions::default()
        };
        model.simulate(&profile, &bx, &x, &opts).expect("simulate")
    }

    #[test]
    fn analyze_produces_every_model_section() {
        let recorder = Recorder::new(ObserveConfig::default());
        let result = modeled_run(&recorder);
        let report = analyze(&result, &recorder);
        assert!(report.model_breakdown.is_some());
        assert!(report.imbalance.is_some());
        assert!(report.mpi.is_some());
        assert!(report.critical.is_some());
        assert!(!report.findings.is_empty());
        assert!(
            !report.has_critical(),
            "healthy run has no critical finding"
        );
    }

    #[test]
    fn attach_gpu_adds_device_sections_and_findings() {
        use md_model::{GpuModel, GpuRunOptions};
        let recorder = Recorder::new(ObserveConfig::default());
        let result = modeled_run(&recorder);
        let mut report = analyze(&result, &recorder);
        let profile = WorkloadProfile::measure(Benchmark::Lj, 10, 1).expect("profile");
        let (bx, x) = build_positions(Benchmark::Lj, 1, 1).expect("positions");
        let traced = GpuModel::new()
            .simulate_traced(&profile, &bx, &x, &GpuRunOptions::default(), 10)
            .expect("traced run");
        attach_gpu(&mut report, &traced.timeline);
        assert!(report.gpu.is_some());
        assert!(report.device_critical.is_some());
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind.starts_with("gpu.") || f.kind.starts_with("critical_path.device")));
        let rendered = report.render();
        assert!(rendered.contains("per-device breakdown"));
    }

    #[test]
    fn trend_appends_in_run_order_with_provenance() {
        let dir = std::env::temp_dir().join(format!("md_trend_harness_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let obs = BTreeMap::from([("step_seconds.total".to_string(), 0.5)]);
        append_trend(&dir, "lj", &obs, 4).unwrap();
        append_trend(&dir, "lj", &obs, 8).unwrap();
        let history = md_insight::trend::load_history(&dir, "lj").unwrap();
        assert_eq!(history.len(), 2);
        assert_eq!(history[0].threads, 4);
        assert_eq!(history[1].threads, 8);
        assert!(!history[0].commit.is_empty());
        assert_eq!(history[0].metrics["step_seconds.total"], 0.5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn observations_are_per_step_and_deterministic() {
        let recorder = Recorder::new(ObserveConfig::default());
        let a = observations(&modeled_run(&recorder), 10_000);
        let b = observations(&modeled_run(&recorder), 10_000);
        assert_eq!(a, b, "modeled costs are bit-deterministic");
        assert!(a.contains_key("step_seconds.Pair"));
        assert!(a.contains_key("step_seconds.total"));
        assert!(!a.contains_key("step_seconds.Other"), "init cost excluded");
    }
}
