//! Plain-text table rendering and CSV output for the figure data.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The header cells.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Writes the rows as CSV (header first) to `path`, creating parents.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        let esc = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        writeln!(
            f,
            "{}",
            self.header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            )?;
        }
        Ok(())
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut line = String::new();
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(line, "{:>w$}  ", h, w = widths[i]);
        }
        writeln!(f, "{}", line.trim_end())?;
        let total: usize = widths.iter().sum::<usize>() + 2 * ncol;
        writeln!(f, "{}", "-".repeat(total.min(160)))?;
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:>w$}  ", cell, w = widths[i]);
            }
            writeln!(f, "{}", line.trim_end())?;
        }
        Ok(())
    }
}

/// Formats a float with sensible significant digits for table cells.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else if x.abs() >= 0.1 {
        format!("{x:.2}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["lj", "55"]).row(["rhodo", "440"]);
        let s = t.to_string();
        assert!(s.contains("name"));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["1", "x,y"]);
        let dir = std::env::temp_dir().join("verlette-test-csv");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert_eq!(s, "a,b\n1,\"x,y\"\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fnum_scales_digits() {
        assert_eq!(fnum(12345.6), "12346");
        assert_eq!(fnum(12.34), "12.3");
        assert_eq!(fnum(0.5), "0.50");
        assert_eq!(fnum(0.0123), "0.012");
        assert_eq!(fnum(0.0), "0");
    }
}
