//! The paper's Figure-2 "profiling experiment" mode on the *real* engine:
//! run every benchmark deck for a fixed number of steps on this host and
//! report the wall-clock task breakdowns, neighbor statistics, and
//! thermodynamic sanity — the measured counterpart of the modeled Figure 3.
//!
//! ```text
//! cargo run --release -p md-harness --bin profile [--steps N]
//! ```

use md_core::TaskKind;
use md_harness::render::{fnum, TextTable};
use md_workloads::{build_deck, Benchmark};

fn main() {
    let mut steps: u64 = 20;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--steps" {
            steps = args
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("--steps requires a number");
                    std::process::exit(2);
                });
        }
    }

    let mut header: Vec<String> = vec![
        "benchmark".into(),
        "TS/s (host)".into(),
        "nbr/atom".into(),
        "rebuilds".into(),
    ];
    header.extend(TaskKind::ALL.iter().map(|t| format!("{t} %")));
    let mut table = TextTable::new(header);

    for bench in Benchmark::ALL {
        eprint!("[profile] {bench}: building ... ");
        let mut deck = match build_deck(bench, 1, 2022) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("failed: {e}");
                continue;
            }
        };
        eprint!("running {steps} steps ... ");
        let report = match deck.simulation.run(steps) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("failed: {e}");
                continue;
            }
        };
        eprintln!("{:.1} TS/s", report.ts_per_sec);
        let nbr = deck
            .simulation
            .neighbor_list()
            .map_or(0.0, |n| n.stats().neighbors_within_cutoff);
        let mut row = vec![
            bench.to_string(),
            fnum(report.ts_per_sec),
            fnum(nbr),
            report.neighbor_builds.to_string(),
        ];
        row.extend(
            TaskKind::ALL
                .iter()
                .map(|&t| fnum(report.ledger.percent(t))),
        );
        table.row(row);
    }

    println!("\n== Real-engine task profile, 32k decks, {steps} steps each ==");
    println!("(host wall clock on this machine; the paper's Xeon 8358 sweep is `figures fig03`)\n");
    println!("{table}");
}
