//! The paper's Figure-2 "profiling experiment" mode on the *real* engine:
//! run every benchmark deck for a fixed number of steps on this host and
//! report the wall-clock task breakdowns, neighbor statistics, and
//! thermodynamic sanity — the measured counterpart of the modeled Figure 3.
//!
//! ```text
//! cargo run --release -p md-harness --bin profile [--steps N]
//!     [--threads T] [--deterministic] [--trace out.json] [--metrics out.jsonl]
//!     [--analyze]
//! ```
//!
//! `--threads T` runs the hot kernels on `T` shared-memory threads (traced
//! runs then also get per-thread fork/join lanes); `--deterministic` pins
//! the parallel reductions to a fixed-chunk order. Defaults come from
//! `MD_THREADS` / `MD_DETERMINISTIC`.
//!
//! With `--trace`, every step is recorded through `md-observe` and the run
//! ends with a Chrome `trace_event` JSON (open in `chrome://tracing` or
//! Perfetto): lane 0 is the real engine (all eight task categories plus the
//! PPPM kernel sub-spans), lanes 1.. are the ranks of a modeled 8-rank
//! virtual cluster with per-MPI-function spans at simulated timestamps.
//! `--metrics` additionally writes per-step JSONL samples. Recording can
//! also be switched on without flags via `MD_OBSERVE=1` (capacities:
//! `MD_OBSERVE_STEPS`, `MD_OBSERVE_EVENTS`).
//!
//! `--analyze` collects per-rank stats and critical-path records from the
//! modeled cluster run and prints the md-insight characterization report
//! (bottleneck attribution, `%varavg` load imbalance, per-MPI-function
//! overhead, critical path). It also runs the traced GPU-instance model so
//! the report carries the per-device kernel/memcpy/idle breakdown and the
//! host↔device critical path, and traced runs gain one lane per modeled
//! device.

use md_core::{TaskKind, Threads};
use md_harness::insight;
use md_harness::render::{fnum, TextTable};
use md_model::{
    CpuModel, CpuRunOptions, CpuRunResult, GpuModel, GpuRunOptions, GpuTracedRun, WorkloadProfile,
};
use md_observe::{chrome_trace_json, metrics_jsonl, text_report, ObserveConfig, Recorder};
use md_workloads::{build_deck_with, build_positions, Benchmark};

fn main() {
    let mut steps: u64 = 20;
    let mut threads = Threads::from_env();
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut analyze = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let value = |args: &mut dyn Iterator<Item = String>| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--steps" => {
                steps = value(&mut args).parse().unwrap_or_else(|_| {
                    eprintln!("--steps requires a number");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                threads.count = value(&mut args).parse().unwrap_or_else(|_| {
                    eprintln!("--threads requires a number");
                    std::process::exit(2);
                });
                if threads.count == 0 {
                    eprintln!("--threads requires at least 1");
                    std::process::exit(2);
                }
            }
            "--deterministic" => threads.deterministic = true,
            "--trace" => trace_path = Some(value(&mut args)),
            "--metrics" => metrics_path = Some(value(&mut args)),
            "--analyze" => analyze = true,
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let mut cfg = ObserveConfig::from_env();
    cfg.enabled = cfg.enabled || trace_path.is_some() || metrics_path.is_some() || analyze;
    let recorder = Recorder::new(cfg);

    let mut header: Vec<String> = vec![
        "benchmark".into(),
        "TS/s (host)".into(),
        "nbr/atom".into(),
        "rebuilds".into(),
    ];
    header.extend(TaskKind::ALL.iter().map(|t| format!("{t} %")));
    let mut table = TextTable::new(header);

    if threads.active() {
        eprintln!("[profile] hot kernels on {threads}");
    }
    for bench in Benchmark::ALL {
        eprint!("[profile] {bench}: building ... ");
        let mut deck = match build_deck_with(bench, 1, 2022, threads) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("failed: {e}");
                continue;
            }
        };
        deck.simulation.set_recorder(recorder.clone());
        eprint!("running {steps} steps ... ");
        let report = match deck.simulation.run(steps) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("failed: {e}");
                continue;
            }
        };
        eprintln!("{:.1} TS/s", report.ts_per_sec);
        let nbr = deck
            .simulation
            .neighbor_list()
            .map_or(0.0, |n| n.stats().neighbors_within_cutoff);
        let mut row = vec![
            bench.to_string(),
            fnum(report.ts_per_sec),
            fnum(nbr),
            report.neighbor_builds.to_string(),
        ];
        row.extend(
            TaskKind::ALL
                .iter()
                .map(|&t| fnum(report.ledger.percent(t))),
        );
        table.row(row);
    }

    println!("\n== Real-engine task profile, 32k decks, {steps} steps each ==");
    println!("(host wall clock on this machine; the paper's Xeon 8358 sweep is `figures fig03`)\n");
    println!("{table}");

    if recorder.is_enabled() {
        // Add per-rank lanes: a short modeled 8-rank LJ run on the virtual
        // cluster, traced at simulated timestamps.
        eprintln!("[profile] tracing 8-rank virtual cluster (modeled lj) ...");
        match trace_cluster(&recorder, analyze) {
            Ok(result) => {
                if analyze {
                    let mut report = insight::analyze(&result, &recorder);
                    eprintln!("[profile] tracing GPU-instance model (modeled lj, 1 device) ...");
                    match trace_gpu(&recorder) {
                        Ok(traced) => insight::attach_gpu(&mut report, &traced.timeline),
                        Err(e) => eprintln!("[profile] GPU trace failed: {e}"),
                    }
                    println!("\n{}", report.render());
                }
            }
            Err(e) => eprintln!("[profile] cluster trace failed: {e}"),
        }

        if let Some(path) = &trace_path {
            match std::fs::write(path, chrome_trace_json(&recorder)) {
                Ok(()) => eprintln!(
                    "[profile] wrote {path} ({} events) — open in chrome://tracing or Perfetto",
                    recorder.event_count()
                ),
                Err(e) => {
                    eprintln!("[profile] cannot write {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        if let Some(path) = &metrics_path {
            match std::fs::write(path, metrics_jsonl(&recorder)) {
                Ok(()) => eprintln!("[profile] wrote {path}"),
                Err(e) => {
                    eprintln!("[profile] cannot write {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        println!("{}", text_report(&recorder));
    }
}

/// Runs the CPU model for LJ over 8 virtual ranks with `recorder` attached,
/// so the exported trace gets per-rank lanes (`rank 0`..`rank 7`). With
/// `collect_rank_stats`, the result also carries per-rank ledgers and
/// critical-path records for the insight analyzer.
fn trace_cluster(recorder: &Recorder, collect_rank_stats: bool) -> md_core::Result<CpuRunResult> {
    let profile = WorkloadProfile::measure(Benchmark::Lj, 40, 1)?;
    let (bx, x) = build_positions(Benchmark::Lj, 1, 1)?;
    let mut model = CpuModel::new();
    model.set_recorder(recorder.clone());
    let opts = CpuRunOptions {
        ranks: 8,
        sim_steps: 40,
        // Short traced window: make sure a thermo allreduce (the modeled
        // Output task) lands inside it.
        thermo_every: 10,
        collect_rank_stats,
        ..CpuRunOptions::default()
    };
    model.simulate(&profile, &bx, &x, &opts)
}

/// Runs the traced GPU-instance model for LJ with `recorder` attached, so
/// the exported trace gets device lanes (`gpu 0`, `gpu host`) and the
/// analyzer gets a [`md_model::gpu::GpuTimeline`].
fn trace_gpu(recorder: &Recorder) -> md_core::Result<GpuTracedRun> {
    let profile = WorkloadProfile::measure(Benchmark::Lj, 40, 1)?;
    let (bx, x) = build_positions(Benchmark::Lj, 1, 1)?;
    let mut model = GpuModel::new();
    model.set_recorder(recorder.clone());
    model.simulate_traced(&profile, &bx, &x, &GpuRunOptions::default(), 40)
}
