//! Runs a real benchmark deck on the actual engine — the "profiling
//! experiment" path of the paper's framework (their Figure 2 A).
//!
//! ```text
//! run_deck <benchmark> [--steps N] [--scale S] [--thermo N]
//!          [--threads T] [--deterministic]
//!          [--dump traj.xyz] [--write-data out.data]
//! ```
//!
//! `--threads T` runs the hot kernels (pair, neighbor build, PPPM) on `T`
//! shared-memory threads; `--deterministic` switches the parallel
//! reductions to a fixed-chunk order so any thread count reproduces the
//! serial trajectory bitwise. Defaults come from `MD_THREADS` /
//! `MD_DETERMINISTIC`.

use md_core::{TaskKind, Threads};
use md_workloads::io::{write_data, AtomStyle, XyzDump};
use md_workloads::{build_deck_with, Benchmark};
use std::path::PathBuf;

struct Args {
    benchmark: Benchmark,
    steps: u64,
    scale: usize,
    thermo: u64,
    threads: Threads,
    dump: Option<PathBuf>,
    write_data_path: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let bench_name = args.next().ok_or_else(|| {
        "usage: run_deck <lj|chain|eam|chute|rhodo> [--steps N] [--scale S] \
         [--thermo N] [--threads T] [--deterministic] [--dump FILE] \
         [--write-data FILE]"
            .to_string()
    })?;
    let benchmark = Benchmark::parse(&bench_name).map_err(|e| e.to_string())?;
    let mut out = Args {
        benchmark,
        steps: 100,
        scale: 1,
        thermo: 20,
        threads: Threads::from_env(),
        dump: None,
        write_data_path: None,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--steps" => out.steps = value("--steps")?.parse().map_err(|e| format!("{e}"))?,
            "--scale" => out.scale = value("--scale")?.parse().map_err(|e| format!("{e}"))?,
            "--thermo" => out.thermo = value("--thermo")?.parse().map_err(|e| format!("{e}"))?,
            "--threads" => {
                out.threads.count = value("--threads")?.parse().map_err(|e| format!("{e}"))?;
                if out.threads.count == 0 {
                    return Err("--threads requires at least 1".to_string());
                }
            }
            "--deterministic" => out.threads.deterministic = true,
            "--dump" => out.dump = Some(PathBuf::from(value("--dump")?)),
            "--write-data" => out.write_data_path = Some(PathBuf::from(value("--write-data")?)),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(out)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut deck = match build_deck_with(args.benchmark, args.scale, 2022, args.threads) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("deck construction failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "running {} at scale {} ({} atoms), {} steps, {}",
        args.benchmark,
        args.scale,
        deck.simulation.atoms().len(),
        args.steps,
        args.threads
    );
    let mut dump = args.dump.as_deref().map(|p| {
        XyzDump::create(p).unwrap_or_else(|e| {
            eprintln!("cannot create dump: {e}");
            std::process::exit(1);
        })
    });
    println!("{}", deck.simulation.thermo());
    let mut done = 0u64;
    while done < args.steps {
        let burst = args.thermo.max(1).min(args.steps - done);
        if let Err(e) = deck.simulation.run(burst) {
            eprintln!("step failed: {e}");
            std::process::exit(1);
        }
        done += burst;
        println!("{}", deck.simulation.thermo());
        if let Some(d) = dump.as_mut() {
            if let Err(e) = d.write_frame(deck.simulation.atoms(), deck.simulation.step_index()) {
                eprintln!("dump failed: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("\ntask breakdown (Table 1 taxonomy):");
    let ledger = deck.simulation.ledger();
    for task in TaskKind::ALL {
        let pct = ledger.percent(task);
        if pct > 0.05 {
            println!("  {:<8} {:>5.1}%", task.label(), pct);
        }
    }
    if let Some(nl) = deck.simulation.neighbor_list() {
        let s = nl.stats();
        println!(
            "neighbor list: {} builds, {:.1} stored nbr/atom, {:.1} within cutoff",
            s.builds, s.neighbors_per_atom, s.neighbors_within_cutoff
        );
    }
    if let Some(path) = &args.write_data_path {
        let style = if args.benchmark == Benchmark::Rhodo {
            AtomStyle::Full
        } else {
            AtomStyle::Atomic
        };
        let bx = *deck.simulation.sim_box();
        if let Err(e) = write_data(path, &bx, deck.simulation.atoms(), style) {
            eprintln!("write-data failed: {e}");
            std::process::exit(1);
        }
        println!("wrote restartable data file to {}", path.display());
    }
    if let Some(d) = &dump {
        println!("wrote {} trajectory frames", d.frames());
    }
}
