//! Runs a real benchmark deck on the actual engine — the "profiling
//! experiment" path of the paper's framework (their Figure 2 A).
//!
//! ```text
//! run_deck <benchmark> [--steps N] [--scale S] [--thermo N]
//!          [--threads T] [--deterministic]
//!          [--dump traj.xyz] [--write-data out.data]
//!          [--checkpoint-every N] [--checkpoint-dir DIR]
//!          [--checkpoint-retain K] [--resume]
//!          [--faults SPEC] [--trace out.json]
//!          [--comm-timeout SECS] [--max-rank-retries K]
//!          [--repartition-every N]
//!          [--insight DIR] [--baselines DIR] [--update-baselines]
//!          [--gpu-insight]
//! ```
//!
//! `--threads T` runs the hot kernels (pair, neighbor build, PPPM) on `T`
//! shared-memory threads; `--deterministic` switches the parallel
//! reductions to a fixed-chunk order so any thread count reproduces the
//! serial trajectory bitwise. Defaults come from `MD_THREADS` /
//! `MD_DETERMINISTIC`.
//!
//! ## Resilience
//!
//! `--checkpoint-every N` writes a checksummed checkpoint every N steps to
//! `--checkpoint-dir` (default `checkpoints/`), keeping the newest
//! `--checkpoint-retain` files (default 3). `--resume` restarts from the
//! newest checkpoint in that directory; `--steps` stays the *total* step
//! target, so a resumed run finishes exactly where an uninterrupted one
//! would — bitwise, in deterministic mode.
//!
//! `--faults SPEC` injects a deterministic fault schedule (see the
//! md-resilience grammar): engine faults (`force-flip:<atom>@<step>`) are
//! caught by the numerical watchdog and rolled back under the recovery
//! ladder; cluster faults (`rank-stall:<rank>@<step>`, `rank-slow`,
//! `halo-drop`, `halo-dup`, `halo-corrupt`, `rank-crash`) additionally
//! drive a modeled 8-rank virtual cluster whose per-rank lanes land in
//! `--trace` output.
//!
//! ## Self-healing cluster
//!
//! A `rank-crash:<rank>@<step>` fault fail-stops a virtual rank. The
//! comm-health layer detects the silence on the modeled cluster (deadline
//! timeouts, seeded retry/backoff, per-rank retry budgets — tune with
//! `--comm-timeout` and `--max-rank-retries`), and the resilient runner
//! answers on the engine side: roll back to the last snapshot, re-decompose
//! over N−1 ranks, and continue — the post-shrink trajectory is bitwise the
//! crash-free one, because the shrink touches no physics knob. Every shrink
//! prints a `[recovery] shrink:` line and is serialized (CRC-checked wire
//! format) to `<checkpoint-dir>/shrink.reports`. When the cluster cannot
//! shrink further the run exits 4 with a structured failure report.
//! `halo-corrupt:<rank>@<step>` flips a byte in a framed ghost payload; the
//! CRC check catches it and a budgeted retry re-transfers the halo.
//!
//! `--repartition-every N` turns on imbalance-aware repartitioning in the
//! modeled cluster: every N steps the census names the suspect rank and the
//! owned-atom loads are re-split in inverse proportion to the measured
//! per-atom rates; the insight report ranks a `repartition.effective`
//! finding when each re-split shrank the windowed compute `%varavg`.
//!
//! ## Analysis
//!
//! `--insight DIR` runs the md-insight analyzer after the run: the modeled
//! 8-rank cluster executes with per-rank stats and critical-path tracking,
//! and DIR receives `report.txt` (the characterization report, also printed),
//! `metrics.om` (OpenMetrics snapshot), and `folded.txt` (folded stacks for
//! flamegraph tooling). Modeled per-task step costs are compared against
//! `--baselines DIR` (default `baselines/`) per deck; `--update-baselines`
//! folds this run into the stored baseline (refused under fault injection,
//! which would poison it) and appends one provenance-tagged entry to the
//! cross-run trend history `<baselines>/<deck>.history.jsonl`. The process
//! exits 3 when a perf regression is detected (4 when a rank crash is
//! unrecoverable), so CI can gate on it.
//!
//! `--gpu-insight` additionally runs the traced GPU-instance model on the
//! same deck: every modeled device gets its own trace lane (kernels and
//! PCIe copies at simulated time; visible in `--trace` output), and the
//! characterization report gains a per-device kernel/memcpy/idle breakdown
//! plus a host↔device critical path, so "memcpy-bound" findings rank next
//! to the imbalance ones (the paper's Figs. 7–9 mechanisms). Works with or
//! without `--insight DIR`; without it the GPU-only report is printed.

use md_core::{TaskKind, Threads};
use md_harness::insight;
use md_model::{
    CpuModel, CpuRunOptions, CpuRunResult, GpuModel, GpuRunOptions, GpuTracedRun, WorkloadProfile,
};
use md_observe::{chrome_trace_json, ObserveConfig, Recorder};
use md_resilience::{
    Checkpoint, CheckpointManager, FaultPlan, RecoveryPolicy, ResilienceError, ResilientRunner,
    ShrinkReport, Watchdog, WatchdogConfig,
};
use md_workloads::io::{write_data, AtomStyle, XyzDump};
use md_workloads::{build_deck_with, build_positions, Benchmark, Deck};
use std::path::PathBuf;
use std::sync::Arc;

/// Deck-recipe seed used by every harness run (and stamped into
/// checkpoints, so a resume rebuilds the same deck).
const DECK_SEED: u64 = 2022;

struct Args {
    benchmark: Benchmark,
    steps: u64,
    scale: usize,
    thermo: u64,
    threads: Threads,
    dump: Option<PathBuf>,
    write_data_path: Option<PathBuf>,
    checkpoint_every: u64,
    checkpoint_dir: PathBuf,
    checkpoint_retain: usize,
    resume: bool,
    faults: FaultPlan,
    trace: Option<PathBuf>,
    comm_timeout: f64,
    max_rank_retries: u32,
    repartition_every: u64,
    insight: Option<PathBuf>,
    baselines: PathBuf,
    update_baselines: bool,
    gpu_insight: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let bench_name = args.next().ok_or_else(|| {
        "usage: run_deck <lj|chain|eam|chute|rhodo> [--steps N] [--scale S] \
         [--thermo N] [--threads T] [--deterministic] [--dump FILE] \
         [--write-data FILE] [--checkpoint-every N] [--checkpoint-dir DIR] \
         [--checkpoint-retain K] [--resume] [--faults SPEC] [--trace FILE] \
         [--comm-timeout SECS] [--max-rank-retries K] [--repartition-every N] \
         [--insight DIR] [--baselines DIR] [--update-baselines] [--gpu-insight]"
            .to_string()
    })?;
    let benchmark = Benchmark::parse(&bench_name).map_err(|e| e.to_string())?;
    let mut out = Args {
        benchmark,
        steps: 100,
        scale: 1,
        thermo: 20,
        threads: Threads::from_env(),
        dump: None,
        write_data_path: None,
        checkpoint_every: 0,
        checkpoint_dir: PathBuf::from("checkpoints"),
        checkpoint_retain: 3,
        resume: false,
        faults: FaultPlan::default(),
        trace: None,
        comm_timeout: 0.0,
        max_rank_retries: 3,
        repartition_every: 0,
        insight: None,
        baselines: PathBuf::from("baselines"),
        update_baselines: false,
        gpu_insight: false,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--steps" => out.steps = value("--steps")?.parse().map_err(|e| format!("{e}"))?,
            "--scale" => out.scale = value("--scale")?.parse().map_err(|e| format!("{e}"))?,
            "--thermo" => out.thermo = value("--thermo")?.parse().map_err(|e| format!("{e}"))?,
            "--threads" => {
                out.threads.count = value("--threads")?.parse().map_err(|e| format!("{e}"))?;
                if out.threads.count == 0 {
                    return Err("--threads requires at least 1".to_string());
                }
            }
            "--deterministic" => out.threads.deterministic = true,
            "--dump" => out.dump = Some(PathBuf::from(value("--dump")?)),
            "--write-data" => out.write_data_path = Some(PathBuf::from(value("--write-data")?)),
            "--checkpoint-every" => {
                out.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--checkpoint-dir" => {
                out.checkpoint_dir = PathBuf::from(value("--checkpoint-dir")?);
            }
            "--checkpoint-retain" => {
                out.checkpoint_retain = value("--checkpoint-retain")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--resume" => out.resume = true,
            "--faults" => {
                out.faults = FaultPlan::parse(&value("--faults")?).map_err(|e| e.to_string())?;
            }
            "--trace" => out.trace = Some(PathBuf::from(value("--trace")?)),
            "--comm-timeout" => {
                out.comm_timeout = value("--comm-timeout")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
                if out.comm_timeout < 0.0 {
                    return Err("--comm-timeout must be >= 0".to_string());
                }
            }
            "--max-rank-retries" => {
                out.max_rank_retries = value("--max-rank-retries")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--repartition-every" => {
                out.repartition_every = value("--repartition-every")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--insight" => out.insight = Some(PathBuf::from(value("--insight")?)),
            "--baselines" => out.baselines = PathBuf::from(value("--baselines")?),
            "--update-baselines" => out.update_baselines = true,
            "--gpu-insight" => out.gpu_insight = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(out)
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

/// Builds the deck fresh, or restores it from the newest checkpoint when
/// `--resume` is given (falling back to a fresh build if none exists yet,
/// so a resume-first invocation still works).
fn obtain_deck(args: &Args) -> Deck {
    if args.resume {
        let mgr = CheckpointManager::new(&args.checkpoint_dir, 0, 0)
            .unwrap_or_else(|e| fail(format!("checkpoint dir: {e}")));
        match mgr.latest() {
            Ok(Some(path)) => {
                let ckpt = Checkpoint::read_from(&path)
                    .unwrap_or_else(|e| fail(format!("cannot resume: {e}")));
                if ckpt.header.benchmark != args.benchmark {
                    fail(format!(
                        "cannot resume: checkpoint is for {}, requested {}",
                        ckpt.header.benchmark, args.benchmark
                    ));
                }
                let deck = ckpt
                    .restore()
                    .unwrap_or_else(|e| fail(format!("cannot resume: {e}")));
                println!(
                    "resumed from {} at step {}",
                    path.display(),
                    deck.simulation.step_index()
                );
                return deck;
            }
            Ok(None) => eprintln!(
                "no checkpoint in {}; starting fresh",
                args.checkpoint_dir.display()
            ),
            Err(e) => fail(format!("cannot list checkpoints: {e}")),
        }
    }
    build_deck_with(args.benchmark, args.scale, DECK_SEED, args.threads)
        .unwrap_or_else(|e| fail(format!("deck construction failed: {e}")))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut deck = obtain_deck(&args);
    let resilient = args.checkpoint_every > 0
        || args.resume
        || !args.faults.engine_faults().is_empty()
        || !args.faults.crashes().is_empty();

    println!(
        "running {} at scale {} ({} atoms), {} steps, {}",
        args.benchmark,
        args.scale,
        deck.simulation.atoms().len(),
        args.steps,
        args.threads
    );
    let mut dump = args
        .dump
        .as_deref()
        .map(|p| XyzDump::create(p).unwrap_or_else(|e| fail(format!("cannot create dump: {e}"))));

    // Health/fault counters, trace lanes, and the insight analyzer need an
    // enabled recorder.
    let mut cfg = ObserveConfig::from_env();
    cfg.enabled = cfg.enabled
        || resilient
        || !args.faults.is_empty()
        || args.trace.is_some()
        || args.insight.is_some()
        || args.gpu_insight;
    let recorder = Recorder::new(cfg);
    if recorder.is_enabled() {
        deck.simulation.set_recorder(recorder.clone());
    }

    let mut runner = resilient.then(|| {
        let policy = RecoveryPolicy {
            snapshot_every: if args.checkpoint_every > 0 {
                args.checkpoint_every
            } else {
                10
            },
            ..RecoveryPolicy::default()
        };
        let mut r = ResilientRunner::new(
            policy,
            Watchdog::new(WatchdogConfig::default()),
            args.faults.clone(),
        );
        if !args.faults.crashes().is_empty() {
            // Arm the degraded-mode shrink: the harness models 8 ranks, and
            // a crashed one is rolled past by re-decomposing over N−1.
            r = r.with_cluster(8, args.max_rank_retries);
        }
        if args.checkpoint_every > 0 {
            let mgr = CheckpointManager::new(
                &args.checkpoint_dir,
                args.checkpoint_every,
                args.checkpoint_retain,
            )
            .unwrap_or_else(|e| fail(format!("checkpoint dir: {e}")));
            r = r.with_checkpoints(mgr, DECK_SEED);
        }
        r
    });

    println!("{}", deck.simulation.thermo());
    let mut violations = 0u64;
    let mut rollbacks = 0u32;
    let mut checkpoints_written = 0u64;
    let mut shrinks: Vec<ShrinkReport> = Vec::new();
    // `--steps` is the total target, so a resumed run finishes the same
    // trajectory an uninterrupted one would.
    while deck.simulation.step_index() < args.steps {
        let burst = args
            .thermo
            .max(1)
            .min(args.steps - deck.simulation.step_index());
        if let Some(runner) = runner.as_mut() {
            match runner.run(&mut deck, burst) {
                Ok(summary) => {
                    violations += summary.violations;
                    rollbacks += summary.rollbacks;
                    checkpoints_written += summary.checkpoints_written;
                    for m in &summary.mitigations {
                        println!("  [recovery] rolled back, mitigation: {m}");
                    }
                    for s in &summary.shrinks {
                        println!(
                            "  [recovery] rank {} declared failed after {} exhausted retries",
                            s.failed_rank, s.retries_spent
                        );
                        println!("  [recovery] shrink: {s}");
                    }
                    shrinks.extend(summary.shrinks);
                }
                Err(ResilienceError::Unrecoverable(report)) => {
                    eprintln!("unrecoverable: {report}");
                    std::process::exit(4);
                }
                Err(e) => fail(format!("unrecoverable: {e}")),
            }
        } else if let Err(e) = deck.simulation.run(burst) {
            fail(format!("step failed: {e}"));
        }
        println!("{}", deck.simulation.thermo());
        if let Some(d) = dump.as_mut() {
            if let Err(e) = d.write_frame(deck.simulation.atoms(), deck.simulation.step_index()) {
                fail(format!("dump failed: {e}"));
            }
        }
    }

    println!("\ntask breakdown (Table 1 taxonomy):");
    let ledger = deck.simulation.ledger();
    for task in TaskKind::ALL {
        let pct = ledger.percent(task);
        if pct > 0.05 {
            println!("  {:<8} {:>5.1}%", task.label(), pct);
        }
    }
    if let Some(nl) = deck.simulation.neighbor_list() {
        let s = nl.stats();
        println!(
            "neighbor list: {} builds, {:.1} stored nbr/atom, {:.1} within cutoff",
            s.builds, s.neighbors_per_atom, s.neighbors_within_cutoff
        );
    }

    if resilient {
        println!(
            "resilience: {violations} violation(s), {rollbacks} rollback(s), \
             {checkpoints_written} checkpoint(s) written"
        );
        for counter in [
            "health_nonfinite_force",
            "health_nonfinite_state",
            "health_displacement_spike",
            "health_energy_drift",
            "health_temperature_spike",
            "health_escaped_atom",
            "health_step_error",
            "health_rank_failed",
            "recovery_rollback",
            "recovery_mitigation",
            "recovery_shrink",
        ] {
            if let Some(v) = recorder.counter_value(counter) {
                println!("  {counter:<28} {v:.0}");
            }
        }
        if !shrinks.is_empty() {
            let path = args.checkpoint_dir.join("shrink.reports");
            match write_shrink_reports(&path, &shrinks) {
                Ok(()) => println!(
                    "wrote {} shrink report(s) to {}",
                    shrinks.len(),
                    path.display()
                ),
                Err(e) => fail(format!("cannot write {}: {e}", path.display())),
            }
        }
    }

    // The modeled 8-rank cluster runs when cluster faults need replaying
    // and/or the insight analyzer needs per-rank stats.
    let model_run = if args.faults.has_cluster_faults() || args.insight.is_some() {
        match run_model_cluster(&args, &recorder) {
            Ok(run) => Some(run),
            Err(e) => fail(format!("modeled cluster run failed: {e}")),
        }
    } else {
        None
    };

    // The traced GPU-instance model runs on the same deck: device lanes
    // land in `--trace` output, the timeline feeds the report's per-device
    // sections.
    let gpu_run: Option<GpuTracedRun> = if args.gpu_insight {
        match run_gpu_model(&args, &recorder) {
            Ok(run) => Some(run),
            Err(e) => fail(format!("modeled GPU run failed: {e}")),
        }
    } else {
        None
    };

    let mut regressed = false;
    if let Some(dir) = &args.insight {
        let (result, model_steps) = model_run.as_ref().expect("insight forces a model run");
        let mut report = insight::analyze(result, &recorder);
        if let Some(gpu) = &gpu_run {
            insight::attach_gpu(&mut report, &gpu.timeline);
        }
        let obs = insight::observations(result, *model_steps);
        let update = args.update_baselines;
        if update && !args.faults.is_empty() {
            fail("--update-baselines under --faults would poison the baseline; refusing");
        }
        match insight::check_regression(
            &mut report,
            &args.benchmark.to_string(),
            &obs,
            &args.baselines,
            update,
        ) {
            Ok(r) => regressed = r,
            Err(e) => fail(format!("regression check failed: {e}")),
        }
        if let Err(e) = insight::write_outputs(dir, &report, &recorder) {
            fail(format!("cannot write insight outputs: {e}"));
        }
        println!("\n{}", report.render());
        println!(
            "wrote insight report to {} (report.txt, metrics.om, folded.txt)",
            dir.display()
        );
        if update {
            println!(
                "updated baseline {}",
                args.baselines
                    .join(format!("{}.json", args.benchmark))
                    .display()
            );
            let deck_name = args.benchmark.to_string();
            if let Err(e) =
                insight::append_trend(&args.baselines, &deck_name, &obs, args.threads.count)
            {
                fail(format!("cannot append trend entry: {e}"));
            }
            println!(
                "appended trend entry to {}",
                md_insight::trend::history_path(&args.baselines, &deck_name).display()
            );
        }
    }

    // Without `--insight` the GPU sections still deserve a report.
    if args.insight.is_none() {
        if let Some(gpu) = &gpu_run {
            let mut report = md_insight::InsightReport::default();
            insight::attach_gpu(&mut report, &gpu.timeline);
            println!("\n{}", report.render());
        }
    }

    if let Some(path) = &args.trace {
        match std::fs::write(path, chrome_trace_json(&recorder)) {
            Ok(()) => println!(
                "wrote {} ({} events) — open in chrome://tracing or Perfetto",
                path.display(),
                recorder.event_count()
            ),
            Err(e) => fail(format!("cannot write {}: {e}", path.display())),
        }
    }

    if let Some(path) = &args.write_data_path {
        let style = if args.benchmark == Benchmark::Rhodo {
            AtomStyle::Full
        } else {
            AtomStyle::Atomic
        };
        let bx = *deck.simulation.sim_box();
        if let Err(e) = write_data(path, &bx, deck.simulation.atoms(), style) {
            fail(format!("write-data failed: {e}"));
        }
        println!("wrote restartable data file to {}", path.display());
    }
    if let Some(d) = &dump {
        println!("wrote {} trajectory frames", d.frames());
    }
    if regressed {
        eprintln!("perf regression detected; exiting 3");
        std::process::exit(3);
    }
}

/// Serializes the run's shrink reports: a `u32` count, then each report as
/// a length-prefixed [`ShrinkReport::encode`] blob (tagged, versioned,
/// CRC-checked), little-endian throughout.
fn write_shrink_reports(path: &std::path::Path, shrinks: &[ShrinkReport]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut buf = Vec::new();
    buf.extend_from_slice(
        &u32::try_from(shrinks.len())
            .expect("few shrinks")
            .to_le_bytes(),
    );
    for s in shrinks {
        let blob = s.encode();
        buf.extend_from_slice(&u32::try_from(blob.len()).expect("small blob").to_le_bytes());
        buf.extend_from_slice(&blob);
    }
    std::fs::write(path, buf)
}

/// Simulated-window length of the traced GPU-instance model (fixed so the
/// device-lane trace and per-device shares are deck-reproducible).
const GPU_MODEL_SIM_STEPS: u64 = 40;

/// Runs the traced GPU-instance model (1 device, mixed precision) on the
/// benchmark's reference deck: device lanes land on the recorder, and the
/// returned timeline feeds the report's per-device breakdown and
/// host↔device critical path.
fn run_gpu_model(args: &Args, recorder: &Recorder) -> md_core::Result<GpuTracedRun> {
    println!("\nmodeled GPU instance ({GPU_MODEL_SIM_STEPS} simulated steps, 1 device):");
    let profile = WorkloadProfile::measure(args.benchmark, 20, 1)?;
    let (bx, x) = build_positions(args.benchmark, 1, DECK_SEED)?;
    let mut model = GpuModel::new();
    model.set_recorder(recorder.clone());
    let traced = model.simulate_traced(
        &profile,
        &bx,
        &x,
        &GpuRunOptions::default(),
        GPU_MODEL_SIM_STEPS,
    )?;
    println!(
        "  modeled {:.1} TS/s on {} device(s), {} host ranks, device utilization {:.0}%",
        traced.result.ts_per_sec,
        traced.result.gpus,
        traced.result.host_ranks,
        100.0 * traced.result.device_utilization
    );
    for counter in ["gpu_pcie_htod_bytes", "gpu_pcie_dtoh_bytes"] {
        if let Some(v) = recorder.counter_value(counter) {
            println!("  {counter:<20} {v:.0}");
        }
    }
    Ok(traced)
}

/// Simulated-window floor for the modeled cluster, so baseline comparisons
/// always average over the same number of modeled steps regardless of the
/// fault schedule's horizon.
const MODEL_SIM_STEPS: u64 = 60;

/// Runs the modeled 8-rank virtual cluster, replaying the cluster-side
/// fault schedule if one is set: stalls skew the faulted rank's clock
/// (partners absorb it in MPI_Wait — the paper's Fig. 4/5 imbalance
/// mechanism), halo faults cost extra link transfers. Per-rank lanes land
/// in `--trace` output, injections surface as `fault_*` counters, and
/// per-rank ledgers plus critical-path records feed the insight analyzer.
/// Returns the result and the modeled step count its ledgers are scaled to.
fn run_model_cluster(args: &Args, recorder: &Recorder) -> md_core::Result<(CpuRunResult, u64)> {
    // Cover the whole fault schedule plus slack so skew is visible
    // downstream, but never less than the fixed baseline window.
    let horizon = args
        .faults
        .max_cluster_step()
        .map_or(0, |s| s + 10)
        .max(MODEL_SIM_STEPS);
    println!("\nmodeled 8-rank cluster ({horizon} simulated steps):");
    let profile = WorkloadProfile::measure(args.benchmark, 20, 1)?;
    let (bx, x) = build_positions(args.benchmark, 1, DECK_SEED)?;
    let mut model = CpuModel::new();
    model.set_recorder(recorder.clone());
    if args.faults.has_cluster_faults() {
        model.set_faults(Arc::new(args.faults.clone()));
    }
    // Police the modeled exchanges when asked to, or whenever the fault
    // schedule carries comm faults the detection layer must catch.
    if args.comm_timeout > 0.0 || args.faults.has_comm_faults() {
        model.set_comm_policy(md_parallel::CommPolicy {
            timeout_seconds: if args.comm_timeout > 0.0 {
                args.comm_timeout
            } else {
                md_parallel::CommPolicy::default().timeout_seconds
            },
            max_rank_retries: args.max_rank_retries,
            seed: DECK_SEED,
            ..md_parallel::CommPolicy::default()
        });
    }
    let opts = CpuRunOptions {
        ranks: 8,
        sim_steps: horizon,
        thermo_every: 10,
        collect_rank_stats: args.insight.is_some(),
        repartition_every: args.repartition_every,
        ..CpuRunOptions::default()
    };
    let result = model.simulate(&profile, &bx, &x, &opts)?;
    println!(
        "  modeled {:.1} TS/s over {} ranks",
        result.ts_per_sec, opts.ranks
    );
    for counter in [
        "fault_rank_stall",
        "fault_rank_slow",
        "fault_halo_drop",
        "fault_halo_dup",
        "fault_halo_corrupt",
        "fault_rank_crash",
        "comm_timeout",
        "comm_corrupt",
        "comm_retry",
        "comm_budget_exhausted",
        "imbalance_repartitions",
    ] {
        if let Some(v) = recorder.counter_value(counter) {
            println!("  {counter:<22} {v:.0}");
        }
    }
    for &r in &result.failed_ranks {
        println!("  [comm] modeled rank {r} declared failed (retry budget exhausted)");
    }
    for ev in &result.repartitions {
        println!(
            "  [repartition] step {}: rank {} suspect, moved {} atoms, \
             %varavg {:.1} -> {:.1}",
            ev.step,
            ev.suspect_rank,
            ev.moved_atoms,
            ev.varavg_before_percent,
            ev.varavg_after_percent
        );
    }
    Ok((result, opts.steps))
}
