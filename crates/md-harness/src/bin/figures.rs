//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures [--quick] [--out DIR] [id ...]
//! ```
//!
//! With no ids, all tables and figures are produced. `--quick` restricts the
//! sweep to the two smaller sizes; `--out` writes one CSV per figure.

use md_harness::{context::ExperimentContext, figures, tables, Fidelity, Figure};
use std::path::PathBuf;

fn main() {
    let mut fidelity = Fidelity::Full;
    let mut out: Option<PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => fidelity = Fidelity::Quick,
            "--out" => {
                out = args.next().map(PathBuf::from);
                if out.is_none() {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: figures [--quick] [--out DIR] [table1 table2 table3 fig03 .. fig16]"
                );
                return;
            }
            id => wanted.push(id.to_string()),
        }
    }

    let ctx = ExperimentContext::new(fidelity);
    let selected = |id: &str| wanted.is_empty() || wanted.iter().any(|w| w == id);
    let mut produced: Vec<Figure> = Vec::new();

    if selected("table1") {
        produced.push(tables::table1());
    }
    if selected("table2") {
        match tables::table2(&ctx) {
            Ok(f) => produced.push(f),
            Err(e) => eprintln!("table2 failed: {e}"),
        }
    }
    if selected("table3") {
        produced.push(tables::table3());
    }
    for (id, gen) in figures::GENERATORS {
        if selected(id) {
            eprintln!("[figures] generating {id} ...");
            match gen(&ctx) {
                Ok(f) => produced.push(f),
                Err(e) => eprintln!("{id} failed: {e}"),
            }
        }
    }

    for fig in &produced {
        println!("{fig}");
        println!();
        if let Some(dir) = &out {
            let path = dir.join(format!("{}.csv", fig.id));
            if let Err(e) = fig.table.write_csv(&path) {
                eprintln!("could not write {}: {e}", path.display());
            } else {
                eprintln!("[figures] wrote {}", path.display());
            }
        }
    }
}
