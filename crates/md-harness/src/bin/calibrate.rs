//! Prints the model's outputs next to the paper's anchor numbers
//! (DESIGN.md §4) so calibration drift is visible at a glance.
//!
//! ```text
//! cargo run --release -p md-harness --bin calibrate [--quick]
//! ```

use md_core::{PrecisionMode, TaskKind};
use md_harness::{ExperimentContext, Fidelity};
use md_model::KernelKind;
use md_workloads::Benchmark;

fn row(name: &str, paper: f64, ours: f64) {
    let ratio = if paper != 0.0 { ours / paper } else { f64::NAN };
    println!("{name:<52} paper {paper:>10.2}   ours {ours:>10.2}   ratio {ratio:>5.2}");
}

fn main() -> Result<(), md_core::CoreError> {
    let quick = std::env::args().any(|a| a == "--quick");
    let fidelity = if quick {
        Fidelity::Quick
    } else {
        Fidelity::Full
    };
    let ctx = ExperimentContext::new(fidelity);
    let big = if quick { 2 } else { 4 }; // 256k in quick mode, 2048k full

    println!("== CPU anchors ==");
    let rhodo64 = ctx.cpu_run(Benchmark::Rhodo, big, 64)?;
    let rhodo1 = ctx.cpu_run(Benchmark::Rhodo, big, 1)?;
    if !quick {
        row("rhodo 2048k 64p TS/s (e-4)", 10.77, rhodo64.ts_per_sec);
        row(
            "rhodo 2048k par-eff % (e-4)",
            74.29,
            100.0 * rhodo64.parallel_efficiency(&rhodo1),
        );
        let tight64 =
            ctx.cpu_run_with(Benchmark::Rhodo, big, 64, PrecisionMode::Mixed, Some(1e-7))?;
        let tight1 =
            ctx.cpu_run_with(Benchmark::Rhodo, big, 1, PrecisionMode::Mixed, Some(1e-7))?;
        row("rhodo 2048k 64p TS/s (e-7)", 3.54, tight64.ts_per_sec);
        row(
            "rhodo 2048k par-eff % (e-7)",
            56.54,
            100.0 * tight64.parallel_efficiency(&tight1),
        );
        let lj_s = ctx.cpu_run_with(Benchmark::Lj, big, 64, PrecisionMode::Single, None)?;
        let lj_d = ctx.cpu_run_with(Benchmark::Lj, big, 64, PrecisionMode::Double, None)?;
        row("lj 2048k 64p TS/s single", 115.2, lj_s.ts_per_sec);
        row("lj 2048k 64p TS/s double", 98.9, lj_d.ts_per_sec);
        let rh_s = ctx.cpu_run_with(Benchmark::Rhodo, big, 64, PrecisionMode::Single, None)?;
        let rh_d = ctx.cpu_run_with(Benchmark::Rhodo, big, 64, PrecisionMode::Double, None)?;
        row("rhodo 2048k 64p TS/s single", 11.5, rh_s.ts_per_sec);
        row("rhodo 2048k 64p TS/s double", 8.4, rh_d.ts_per_sec);
    }
    let chute64 = ctx.cpu_run(Benchmark::Chute, 1, 64)?;
    row("chute 32k 64p TS/s", 10697.0, chute64.ts_per_sec);

    println!("\n== per-benchmark 32k sweep (TS/s @ 1 / 16 / 64 ranks; Pair% @1) ==");
    for b in Benchmark::ALL {
        let r1 = ctx.cpu_run(b, 1, 1)?;
        let r16 = ctx.cpu_run(b, 1, 16)?;
        let r64 = ctx.cpu_run(b, 1, 64)?;
        println!(
            "{b:<7} {:>9.1} {:>9.1} {:>9.1}   Pair {:>5.1}%  Neigh {:>5.1}%  Comm@64 {:>5.1}%  imb@64 {:>5.2}%  eff@64 {:>5.1}%",
            r1.ts_per_sec,
            r16.ts_per_sec,
            r64.ts_per_sec,
            r1.tasks.percent(TaskKind::Pair),
            r1.tasks.percent(TaskKind::Neigh),
            r64.tasks.percent(TaskKind::Comm),
            r64.mpi_imbalance_percent,
            100.0 * r64.parallel_efficiency(&r1),
        );
    }

    println!("\n== rhodo k-space grids (scale {big}) ==");
    {
        let profile =
            md_model::WorkloadProfile::measure(Benchmark::Rhodo, 30, 2022)?.at_scale(big)?;
        for err in [1e-4, 1e-5, 1e-6, 1e-7] {
            let ks = profile
                .with_kspace_error(err)?
                .kspace
                .expect("rhodo kspace");
            println!(
                "  err {err:>7.0e}: grid {:?} = {} points",
                ks.grid, ks.grid_points
            );
        }
    }

    println!("\n== GPU anchors ==");
    for b in [
        Benchmark::Lj,
        Benchmark::Chain,
        Benchmark::Eam,
        Benchmark::Rhodo,
    ] {
        let g1 = ctx.gpu_run(b, big, 1)?;
        let g8 = ctx.gpu_run(b, big, 8)?;
        println!(
            "{b:<7} TS/s @1/8 gpus: {:>8.1} {:>8.1}   eff@8 {:>5.1}%  util@8 {:>5.1}%  Pair% {:>5.1}  memcpy% {:>5.1}",
            g1.ts_per_sec,
            g8.ts_per_sec,
            100.0 * g8.parallel_efficiency(&g1),
            100.0 * g8.device_utilization,
            g8.tasks.percent(TaskKind::Pair),
            g8.kernels.percent(KernelKind::MemcpyHtoD) + g8.kernels.percent(KernelKind::MemcpyDtoH),
        );
    }
    if !quick {
        let lj_s = ctx.gpu_run_with(Benchmark::Lj, big, 8, PrecisionMode::Single, None)?;
        let lj_d = ctx.gpu_run_with(Benchmark::Lj, big, 8, PrecisionMode::Double, None)?;
        row("lj 2048k 8gpu TS/s single", 170.0, lj_s.ts_per_sec);
        row("lj 2048k 8gpu TS/s double", 121.6, lj_d.ts_per_sec);
        let rh_s = ctx.gpu_run_with(Benchmark::Rhodo, big, 8, PrecisionMode::Single, None)?;
        let rh_d = ctx.gpu_run_with(Benchmark::Rhodo, big, 8, PrecisionMode::Double, None)?;
        row("rhodo 2048k 8gpu TS/s single", 17.1, rh_s.ts_per_sec);
        row("rhodo 2048k 8gpu TS/s double", 16.5, rh_d.ts_per_sec);
        let coarse =
            ctx.gpu_run_with(Benchmark::Rhodo, big, 8, PrecisionMode::Mixed, Some(1e-4))?;
        let tight = ctx.gpu_run_with(Benchmark::Rhodo, big, 8, PrecisionMode::Mixed, Some(1e-7))?;
        row("rhodo 2048k 8gpu TS/s (e-4)", 16.09, coarse.ts_per_sec);
        row("rhodo 2048k 8gpu TS/s (e-7)", 0.46, tight.ts_per_sec);
    }
    Ok(())
}
