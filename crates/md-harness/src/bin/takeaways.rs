//! Prints the paper's Section 10 takeaway numbers from the models:
//! simulated nanoseconds per day for the flagship Rhodopsin experiment, the
//! GPU utilization story, and the distance to milliseconds-scale experiments.
//!
//! ```text
//! cargo run --release -p md-harness --bin takeaways [--quick]
//! ```

use md_harness::{ExperimentContext, Fidelity};
use md_model::{Interconnect, MultiNodeModel, WorkloadProfile};
use md_workloads::Benchmark;

fn main() -> Result<(), md_core::CoreError> {
    let quick = std::env::args().any(|a| a == "--quick");
    let fidelity = if quick {
        Fidelity::Quick
    } else {
        Fidelity::Full
    };
    let scale = if quick { 2 } else { 4 };
    let ctx = ExperimentContext::new(fidelity);

    println!("== Takeaways (paper Section 10) ==\n");

    // Rhodopsin wall-clock rates: the paper reports ~2 ns/day on the CPU
    // node and ~2.8 ns/day on the 8-GPU node for 2 million atoms.
    let fs_per_step = md_workloads::rhodo::DT; // 2 fs
    let ns_per_day = |ts_per_sec: f64| ts_per_sec * fs_per_step * 86_400.0 / 1.0e6;
    let cpu = ctx.cpu_run(Benchmark::Rhodo, scale, 64)?;
    let gpu = ctx.gpu_run(Benchmark::Rhodo, scale, 8)?;
    println!(
        "rhodopsin {}k atoms, CPU node (64 ranks):  {:6.2} TS/s  = {:5.2} ns/day (paper: ~2)",
        md_workloads::size_label(scale),
        cpu.ts_per_sec,
        ns_per_day(cpu.ts_per_sec)
    );
    println!(
        "rhodopsin {}k atoms, GPU node (8 devices): {:6.2} TS/s  = {:5.2} ns/day (paper: ~2.8)",
        md_workloads::size_label(scale),
        gpu.ts_per_sec,
        ns_per_day(gpu.ts_per_sec)
    );
    println!(
        "mean device utilization at 8 GPUs: {:.0}% (paper: ~30%)",
        100.0 * gpu.device_utilization
    );

    // Distance to drug-discovery timescales.
    let target_ms = 1.0;
    let days = target_ms * 1.0e6 / ns_per_day(gpu.ts_per_sec).max(1e-12);
    println!(
        "\nat that rate, one millisecond of simulated time needs {:.0} years of\nwall clock — the gap to DSAs the paper's introduction quantifies",
        days / 365.0
    );

    // Scale-out check of the paper's Section 4.1 citation.
    println!("\n== Scale-out check (Section 4.1 citation) ==");
    let profile = WorkloadProfile::measure(Benchmark::Lj, 20, 2022)?;
    let (bx, x) = md_workloads::build_positions(Benchmark::Lj, 1, 2022)?;
    let model = MultiNodeModel::new(Interconnect::hdr100());
    let one = model.simulate(&profile, &bx, &x, 1, None)?;
    for nodes in [1usize, 4, 16, 64] {
        let r = model.simulate(&profile, &bx, &x, nodes, Some(&one))?;
        println!(
            "lj 32k on {:>3} nodes: {:>9.0} TS/s, node efficiency {:>5.1}%, inter-node comm {:>4.1}%",
            nodes,
            r.ts_per_sec,
            100.0 * r.node_parallel_efficiency,
            r.internode_comm_percent
        );
    }
    println!("(the paper cites 33% parallel efficiency for LJ at 64 Haswell nodes)");
    Ok(())
}
