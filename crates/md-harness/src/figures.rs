//! Generators for every figure of the paper's evaluation (Figs. 3–16).
//!
//! Each generator sweeps the same parameter grid as the corresponding paper
//! figure and returns the series as a [`TextTable`] (one row per plotted
//! point), which the `figures` binary prints and saves as CSV. Absolute
//! numbers come from the calibrated instance models; see EXPERIMENTS.md for
//! the paper-vs-reproduced comparison.

use crate::context::{ExperimentContext, CPU_PROCS, GPU_DEVICES, KSPACE_ERRORS, MPI_PROCS};
use crate::render::{fnum, TextTable};
use crate::Figure;
use md_core::{PrecisionMode, Result, TaskKind};
use md_model::KernelKind;
use md_parallel::MpiFunction;
use md_workloads::{size_label, Benchmark};

fn task_header() -> Vec<String> {
    let mut h = vec![
        "benchmark".to_string(),
        "size_k".to_string(),
        "procs".to_string(),
    ];
    h.extend(TaskKind::ALL.iter().map(|t| format!("{t} %")));
    h
}

fn task_row(
    bench: Benchmark,
    size_k: usize,
    procs: usize,
    tasks: &md_core::TaskLedger,
) -> Vec<String> {
    let mut row = vec![bench.to_string(), size_k.to_string(), procs.to_string()];
    row.extend(TaskKind::ALL.iter().map(|&t| fnum(tasks.percent(t))));
    row
}

/// Figure 3: breakdown of CPU execution time by task, all benchmarks ×
/// sizes × MPI processes.
///
/// # Errors
///
/// Propagates model failures.
pub fn fig03(ctx: &ExperimentContext) -> Result<Figure> {
    let mut t = TextTable::new(task_header());
    for bench in Benchmark::ALL {
        for &scale in ctx.scales() {
            for &p in &CPU_PROCS {
                let r = ctx.cpu_run(bench, scale, p)?;
                t.row(task_row(bench, size_label(scale), p, &r.tasks));
            }
        }
    }
    Ok(Figure {
        id: "fig03".to_string(),
        caption: "Fig. 3: CPU execution-time breakdown by task".to_string(),
        table: t,
    })
}

/// Figure 4: total MPI overhead and MPI imbalance percentage.
///
/// # Errors
///
/// Propagates model failures.
pub fn fig04(ctx: &ExperimentContext) -> Result<Figure> {
    let mut t = TextTable::new([
        "benchmark",
        "size_k",
        "procs",
        "mpi_time %",
        "mpi_imbalance %",
    ]);
    for bench in Benchmark::ALL {
        for &scale in ctx.scales() {
            for &p in &MPI_PROCS {
                let r = ctx.cpu_run(bench, scale, p)?;
                t.row([
                    format!("{bench}-long"),
                    size_label(scale).to_string(),
                    p.to_string(),
                    fnum(r.mpi_time_percent),
                    fnum(r.mpi_imbalance_percent),
                ]);
            }
        }
    }
    Ok(Figure {
        id: "fig04".to_string(),
        caption: "Fig. 4: total MPI overhead and MPI imbalance, averaged over ranks".to_string(),
        table: t,
    })
}

fn mpi_header() -> Vec<String> {
    let mut h = vec![
        "benchmark".to_string(),
        "size_k".to_string(),
        "procs".to_string(),
    ];
    h.extend(MpiFunction::ALL.iter().map(|f| format!("{f} %")));
    h
}

/// Figure 5: MPI overhead broken down by MPI function.
///
/// # Errors
///
/// Propagates model failures.
pub fn fig05(ctx: &ExperimentContext) -> Result<Figure> {
    let mut t = TextTable::new(mpi_header());
    for bench in Benchmark::ALL {
        for &scale in ctx.scales() {
            for &p in &MPI_PROCS {
                let r = ctx.cpu_run(bench, scale, p)?;
                let mut row = vec![
                    format!("{bench}-long"),
                    size_label(scale).to_string(),
                    p.to_string(),
                ];
                row.extend(MpiFunction::ALL.iter().map(|&f| fnum(r.mpi.percent(f))));
                t.row(row);
            }
        }
    }
    Ok(Figure {
        id: "fig05".to_string(),
        caption: "Fig. 5: MPI overhead breakdown by MPI function".to_string(),
        table: t,
    })
}

/// Figure 6: CPU performance, energy efficiency, parallel efficiency.
///
/// # Errors
///
/// Propagates model failures.
pub fn fig06(ctx: &ExperimentContext) -> Result<Figure> {
    let mut t = TextTable::new([
        "benchmark",
        "size_k",
        "procs",
        "TS/s",
        "TS/s/W",
        "parallel_eff %",
    ]);
    for bench in Benchmark::ALL {
        for &scale in ctx.scales() {
            let single = ctx.cpu_run(bench, scale, 1)?;
            for &p in &CPU_PROCS {
                let r = ctx.cpu_run(bench, scale, p)?;
                t.row([
                    bench.to_string(),
                    size_label(scale).to_string(),
                    p.to_string(),
                    fnum(r.ts_per_sec),
                    fnum(r.ts_per_sec_per_watt),
                    fnum(100.0 * r.parallel_efficiency(&single)),
                ]);
            }
        }
    }
    Ok(Figure {
        id: "fig06".to_string(),
        caption: "Fig. 6: CPU performance / energy efficiency / parallel efficiency".to_string(),
        table: t,
    })
}

/// Figure 7: GPU execution-time breakdown by task (no Chute — the GPU
/// package lacks its pair style).
///
/// # Errors
///
/// Propagates model failures.
pub fn fig07(ctx: &ExperimentContext) -> Result<Figure> {
    let mut t = TextTable::new(task_header());
    for bench in Benchmark::ALL.into_iter().filter(|b| b.gpu_supported()) {
        for &scale in ctx.scales() {
            for &g in &GPU_DEVICES {
                let r = ctx.gpu_run(bench, scale, g)?;
                t.row(task_row(bench, size_label(scale), g, &r.tasks));
            }
        }
    }
    Ok(Figure {
        id: "fig07".to_string(),
        caption: "Fig. 7: GPU execution-time breakdown by task".to_string(),
        table: t,
    })
}

/// Figure 8: GPU kernels and data-movement breakdown.
///
/// # Errors
///
/// Propagates model failures.
pub fn fig08(ctx: &ExperimentContext) -> Result<Figure> {
    let mut header = vec![
        "benchmark".to_string(),
        "size_k".to_string(),
        "gpus".to_string(),
    ];
    header.extend(KernelKind::ALL.iter().map(|k| format!("{k} %")));
    let mut t = TextTable::new(header);
    for bench in Benchmark::ALL.into_iter().filter(|b| b.gpu_supported()) {
        for &scale in ctx.scales() {
            for &g in &GPU_DEVICES {
                let r = ctx.gpu_run(bench, scale, g)?;
                let mut row = vec![
                    bench.to_string(),
                    size_label(scale).to_string(),
                    g.to_string(),
                ];
                row.extend(KernelKind::ALL.iter().map(|&k| fnum(r.kernels.percent(k))));
                t.row(row);
            }
        }
    }
    Ok(Figure {
        id: "fig08".to_string(),
        caption: "Fig. 8: GPU kernel and data-movement breakdown".to_string(),
        table: t,
    })
}

/// Figure 9: GPU performance, energy efficiency, parallel efficiency.
///
/// # Errors
///
/// Propagates model failures.
pub fn fig09(ctx: &ExperimentContext) -> Result<Figure> {
    let mut t = TextTable::new([
        "benchmark",
        "size_k",
        "gpus",
        "TS/s",
        "TS/s/W",
        "parallel_eff %",
        "device_util %",
    ]);
    for bench in Benchmark::ALL.into_iter().filter(|b| b.gpu_supported()) {
        for &scale in ctx.scales() {
            let single = ctx.gpu_run(bench, scale, 1)?;
            for &g in &GPU_DEVICES {
                let r = ctx.gpu_run(bench, scale, g)?;
                t.row([
                    bench.to_string(),
                    size_label(scale).to_string(),
                    g.to_string(),
                    fnum(r.ts_per_sec),
                    fnum(r.ts_per_sec_per_watt),
                    fnum(100.0 * r.parallel_efficiency(&single)),
                    fnum(100.0 * r.device_utilization),
                ]);
            }
        }
    }
    Ok(Figure {
        id: "fig09".to_string(),
        caption: "Fig. 9: GPU performance / energy efficiency / parallel efficiency".to_string(),
        table: t,
    })
}

fn err_label(err: f64) -> String {
    if (err - 1e-4).abs() < 1e-12 {
        "rhodo".to_string()
    } else {
        format!("rhodo-e-{}", (-err.log10()).round() as i32)
    }
}

/// Figure 10: rhodopsin CPU performance and parallel efficiency vs the
/// k-space error threshold.
///
/// # Errors
///
/// Propagates model failures.
pub fn fig10(ctx: &ExperimentContext) -> Result<Figure> {
    let mut t = TextTable::new(["benchmark", "size_k", "procs", "TS/s", "parallel_eff %"]);
    for &err in &KSPACE_ERRORS {
        for &scale in ctx.scales() {
            let single =
                ctx.cpu_run_with(Benchmark::Rhodo, scale, 1, PrecisionMode::Mixed, Some(err))?;
            for &p in &CPU_PROCS {
                let r =
                    ctx.cpu_run_with(Benchmark::Rhodo, scale, p, PrecisionMode::Mixed, Some(err))?;
                t.row([
                    err_label(err),
                    size_label(scale).to_string(),
                    p.to_string(),
                    fnum(r.ts_per_sec),
                    fnum(100.0 * r.parallel_efficiency(&single)),
                ]);
            }
        }
    }
    Ok(Figure {
        id: "fig10".to_string(),
        caption: "Fig. 10: rhodopsin CPU performance vs k-space error threshold".to_string(),
        table: t,
    })
}

/// Figure 11: rhodopsin CPU task breakdown vs the k-space error threshold.
///
/// # Errors
///
/// Propagates model failures.
pub fn fig11(ctx: &ExperimentContext) -> Result<Figure> {
    let mut t = TextTable::new(task_header());
    for &err in &KSPACE_ERRORS {
        if (err - 1e-5).abs() < 1e-12 {
            continue; // the paper's Fig. 11 omits 1e-5 (similar to 1e-6)
        }
        for &scale in ctx.scales() {
            for &p in &CPU_PROCS[1..] {
                let r =
                    ctx.cpu_run_with(Benchmark::Rhodo, scale, p, PrecisionMode::Mixed, Some(err))?;
                let mut row = task_row(Benchmark::Rhodo, size_label(scale), p, &r.tasks);
                row[0] = err_label(err);
                t.row(row);
            }
        }
    }
    Ok(Figure {
        id: "fig11".to_string(),
        caption: "Fig. 11: rhodopsin CPU task breakdown vs k-space error threshold".to_string(),
        table: t,
    })
}

/// Figure 12: rhodopsin MPI function breakdown vs the k-space error
/// threshold.
///
/// # Errors
///
/// Propagates model failures.
pub fn fig12(ctx: &ExperimentContext) -> Result<Figure> {
    let mut t = TextTable::new(mpi_header());
    for &err in &KSPACE_ERRORS {
        for &scale in ctx.scales() {
            for &p in &MPI_PROCS {
                let r =
                    ctx.cpu_run_with(Benchmark::Rhodo, scale, p, PrecisionMode::Mixed, Some(err))?;
                let mut row = vec![err_label(err), size_label(scale).to_string(), p.to_string()];
                row.extend(MpiFunction::ALL.iter().map(|&f| fnum(r.mpi.percent(f))));
                t.row(row);
            }
        }
    }
    Ok(Figure {
        id: "fig12".to_string(),
        caption: "Fig. 12: rhodopsin MPI function breakdown vs k-space error threshold".to_string(),
        table: t,
    })
}

/// Figure 13: rhodopsin GPU performance and parallel efficiency vs the
/// k-space error threshold.
///
/// # Errors
///
/// Propagates model failures.
pub fn fig13(ctx: &ExperimentContext) -> Result<Figure> {
    let mut t = TextTable::new(["benchmark", "size_k", "gpus", "TS/s", "parallel_eff %"]);
    for &err in &KSPACE_ERRORS {
        for &scale in ctx.scales() {
            let single =
                ctx.gpu_run_with(Benchmark::Rhodo, scale, 1, PrecisionMode::Mixed, Some(err))?;
            for &g in &GPU_DEVICES {
                let r =
                    ctx.gpu_run_with(Benchmark::Rhodo, scale, g, PrecisionMode::Mixed, Some(err))?;
                t.row([
                    err_label(err),
                    size_label(scale).to_string(),
                    g.to_string(),
                    fnum(r.ts_per_sec),
                    fnum(100.0 * r.parallel_efficiency(&single)),
                ]);
            }
        }
    }
    Ok(Figure {
        id: "fig13".to_string(),
        caption: "Fig. 13: rhodopsin GPU performance vs k-space error threshold".to_string(),
        table: t,
    })
}

/// Figure 14: rhodopsin MPI overhead and imbalance vs the k-space error
/// threshold (the paper omits 1e-5, similar to 1e-6).
///
/// # Errors
///
/// Propagates model failures.
pub fn fig14(ctx: &ExperimentContext) -> Result<Figure> {
    let mut t = TextTable::new([
        "benchmark",
        "size_k",
        "procs",
        "mpi_time %",
        "mpi_imbalance %",
    ]);
    for &err in &KSPACE_ERRORS {
        if (err - 1e-5).abs() < 1e-12 {
            continue;
        }
        for &scale in ctx.scales() {
            for &p in &MPI_PROCS {
                let r =
                    ctx.cpu_run_with(Benchmark::Rhodo, scale, p, PrecisionMode::Mixed, Some(err))?;
                t.row([
                    err_label(err),
                    size_label(scale).to_string(),
                    p.to_string(),
                    fnum(r.mpi_time_percent),
                    fnum(r.mpi_imbalance_percent),
                ]);
            }
        }
    }
    Ok(Figure {
        id: "fig14".to_string(),
        caption: "Fig. 14: rhodopsin MPI overhead and imbalance vs k-space error threshold"
            .to_string(),
        table: t,
    })
}

fn precision_label(bench: Benchmark, mode: PrecisionMode) -> String {
    match mode {
        PrecisionMode::Mixed => bench.to_string(),
        other => format!("{bench}-{other}"),
    }
}

/// Figure 15: LJ and rhodopsin CPU performance at single/mixed/double
/// precision.
///
/// # Errors
///
/// Propagates model failures.
pub fn fig15(ctx: &ExperimentContext) -> Result<Figure> {
    let mut t = TextTable::new(["benchmark", "size_k", "procs", "TS/s"]);
    for bench in [Benchmark::Lj, Benchmark::Rhodo] {
        for mode in PrecisionMode::ALL {
            for &scale in ctx.scales() {
                for &p in &CPU_PROCS {
                    let r = ctx.cpu_run_with(bench, scale, p, mode, None)?;
                    t.row([
                        precision_label(bench, mode),
                        size_label(scale).to_string(),
                        p.to_string(),
                        fnum(r.ts_per_sec),
                    ]);
                }
            }
        }
    }
    Ok(Figure {
        id: "fig15".to_string(),
        caption: "Fig. 15: CPU performance at single/mixed/double precision".to_string(),
        table: t,
    })
}

/// Figure 16: LJ and rhodopsin GPU performance at single/mixed/double
/// precision.
///
/// # Errors
///
/// Propagates model failures.
pub fn fig16(ctx: &ExperimentContext) -> Result<Figure> {
    let mut t = TextTable::new(["benchmark", "size_k", "gpus", "TS/s"]);
    for bench in [Benchmark::Lj, Benchmark::Rhodo] {
        for mode in PrecisionMode::ALL {
            for &scale in ctx.scales() {
                for &g in &GPU_DEVICES {
                    let r = ctx.gpu_run_with(bench, scale, g, mode, None)?;
                    t.row([
                        precision_label(bench, mode),
                        size_label(scale).to_string(),
                        g.to_string(),
                        fnum(r.ts_per_sec),
                    ]);
                }
            }
        }
    }
    Ok(Figure {
        id: "fig16".to_string(),
        caption: "Fig. 16: GPU performance at single/mixed/double precision".to_string(),
        table: t,
    })
}

/// Every figure generator, keyed by id, in paper order.
pub type Generator = fn(&ExperimentContext) -> Result<Figure>;

/// `(id, generator)` pairs for Figures 3–16.
pub const GENERATORS: [(&str, Generator); 14] = [
    ("fig03", fig03),
    ("fig04", fig04),
    ("fig05", fig05),
    ("fig06", fig06),
    ("fig07", fig07),
    ("fig08", fig08),
    ("fig09", fig09),
    ("fig10", fig10),
    ("fig11", fig11),
    ("fig12", fig12),
    ("fig13", fig13),
    ("fig14", fig14),
    ("fig15", fig15),
    ("fig16", fig16),
];
