//! # md-kspace — long-range Coulomb solvers
//!
//! The Rhodopsin benchmark computes long-range electrostatics with PPPM
//! (particle-particle particle-mesh) at a relative force-error threshold of
//! 1e-4 — and the paper's Section 7 studies what happens when that threshold
//! tightens to 1e-7. This crate implements the full stack from scratch:
//!
//! * [`Complex`] arithmetic and an iterative radix-2 [`Fft3d`],
//! * the classic [`Ewald`] summation (the O(N^{3/2}) reference solver),
//! * [`Pppm`] with B-spline charge assignment, FFT convolution with the
//!   deconvolved Green's function, and ik-differentiated forces,
//! * the LAMMPS-style [`accuracy`] model that turns a relative error
//!   threshold into a splitting parameter and an FFT mesh size — the
//!   quantity the paper's error-threshold sensitivity study sweeps.
//!
//! Both solvers implement [`md_core::KspaceStyle`] and pair with the
//! real-space `erfc` term of `md-potentials`' `lj/charmm/coul/long`.

pub mod accuracy;
pub mod complex;
pub mod ewald;
pub mod fft;
pub mod pppm;

pub use accuracy::KspaceAccuracy;
pub use complex::Complex;
pub use ewald::Ewald;
pub use fft::Fft3d;
pub use pppm::Pppm;
