//! Particle-particle particle-mesh (LAMMPS `kspace_style pppm`).
//!
//! The long-range Coulomb contribution is computed by (1) spreading charges
//! onto a regular mesh with cardinal B-spline weights, (2) a forward 3D FFT,
//! (3) multiplication with the deconvolved Green's function
//! `4π exp(-k²/4g²)/k² · B(m)` (Essmann-style `B(m) = |b_x b_y b_z|²`
//! compensates the two B-spline smoothings), (4) ik-differentiation into
//! three field meshes and three inverse FFTs, and (5) interpolation of the
//! field back to the particles with the same weights — the
//! `make_rho` / `particle_map` / FFT / `interp` kernel structure the paper's
//! Figure 8 shows dominating the Rhodopsin GPU profile.

use crate::accuracy::KspaceAccuracy;
use crate::complex::Complex;
use crate::fft::{Direction, Fft3d};
use md_core::force::KspaceStats;
use md_core::{CoreError, EnergyVirial, KspaceStyle, Result, SimBox, Vec3, V3};
use md_observe::Recorder;

/// Trace lane the solver reports on (shares the engine's lane so the
/// sub-spans nest under the driver's `Kspace` span).
const KSPACE_LANE: u32 = 0;

/// Maximum supported assignment order (matches [`crate::accuracy::MAX_ORDER`]).
const MAX_ORDER: usize = 5;

/// The PPPM solver.
#[derive(Debug, Clone)]
pub struct Pppm {
    cutoff: f64,
    relative_error: f64,
    order: usize,
    g_ewald: f64,
    grid: [usize; 3],
    fft: Option<Fft3d>,
    /// Green's function `A(k) · B(m)` per mesh point (zero at m = 0 and at
    /// deconvolution singularities).
    green: Vec<f64>,
    /// Wavevector per mesh point and dimension.
    kvec: Vec<V3>,
    qsqsum: f64,
    qsum: f64,
    estimated_error: f64,
    qqr2e: f64,
    /// Scratch meshes.
    rho: Vec<Complex>,
    field: [Vec<Complex>; 3],
    recorder: Recorder,
}

impl Pppm {
    /// Creates a PPPM solver with assignment `order` (1..=5; LAMMPS default 5).
    ///
    /// # Panics
    ///
    /// Panics on a non-positive cutoff, a relative error outside `(0, 1)`,
    /// or an unsupported order.
    pub fn new(cutoff: f64, relative_error: f64, order: usize) -> Self {
        assert!(cutoff > 0.0, "cutoff must be positive");
        assert!(
            relative_error > 0.0 && relative_error < 1.0,
            "relative error must be in (0, 1)"
        );
        assert!(
            (1..=MAX_ORDER).contains(&order),
            "assignment order must be 1..={MAX_ORDER}"
        );
        Pppm {
            cutoff,
            relative_error,
            order,
            g_ewald: 0.0,
            grid: [0; 3],
            fft: None,
            green: Vec::new(),
            kvec: Vec::new(),
            qsqsum: 0.0,
            qsum: 0.0,
            estimated_error: 0.0,
            qqr2e: 1.0,
            rho: Vec::new(),
            field: [Vec::new(), Vec::new(), Vec::new()],
            recorder: Recorder::disabled(),
        }
    }

    /// Sets the Coulomb conversion constant of the unit system.
    pub fn set_qqr2e(&mut self, qqr2e: f64) {
        self.qqr2e = qqr2e;
    }

    /// The splitting parameter chosen at setup.
    pub fn g_ewald(&self) -> f64 {
        self.g_ewald
    }

    /// Mesh dimensions chosen at setup.
    pub fn grid(&self) -> [usize; 3] {
        self.grid
    }

    /// Evaluates the `order` B-spline weights of a particle at fractional
    /// mesh coordinate `u` (in units of mesh cells). Returns the leftmost
    /// mesh index and the weights.
    fn bspline_weights(&self, u: f64) -> (i64, [f64; MAX_ORDER]) {
        let n = self.order;
        let k0 = u.floor() as i64;
        let mut w = [0.0f64; MAX_ORDER];
        // Mesh points p = k0 - n + 1 + j for j in 0..n; weight M_n(u - p).
        for (j, wj) in w.iter_mut().enumerate().take(n) {
            let p = k0 - n as i64 + 1 + j as i64;
            *wj = bspline(n, u - p as f64);
        }
        (k0 - n as i64 + 1, w)
    }
}

/// Cardinal B-spline `M_n(x)` with support `(0, n)`.
fn bspline(n: usize, x: f64) -> f64 {
    if x <= 0.0 || x >= n as f64 {
        return 0.0;
    }
    if n == 1 {
        return 1.0; // box function on (0, 1)
    }
    if n == 2 {
        return 1.0 - (x - 1.0).abs();
    }
    let nm1 = (n - 1) as f64;
    (x / nm1) * bspline(n - 1, x) + ((n as f64 - x) / nm1) * bspline(n - 1, x - 1.0)
}

/// Essmann `|b(m)|²` deconvolution factor for one dimension.
fn bmod2(n_order: usize, m: usize, mesh: usize) -> f64 {
    // D(m) = Σ_{j=0}^{n-2} M_n(j+1) e^{2πi m j / K}; |b(m)|² = 1/|D|².
    let mut d = Complex::ZERO;
    for j in 0..=(n_order.saturating_sub(2)) {
        let w = bspline(n_order, (j + 1) as f64);
        d += Complex::cis(2.0 * std::f64::consts::PI * (m * j) as f64 / mesh as f64).scale(w);
    }
    let d2 = d.norm2();
    if d2 < 1e-10 {
        0.0 // singular mode (even orders at the Nyquist frequency)
    } else {
        1.0 / d2
    }
}

impl KspaceStyle for Pppm {
    fn name(&self) -> &'static str {
        "pppm"
    }

    fn setup(&mut self, bx: &SimBox, q: &[f64]) -> Result<()> {
        let natoms = q.len();
        let qsqsum: f64 = q.iter().map(|&qi| qi * qi).sum();
        if qsqsum <= 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "charges",
                reason: "pppm requires a charged system".to_string(),
            });
        }
        let l = bx.lengths();
        let acc = KspaceAccuracy::resolve(
            self.cutoff,
            self.relative_error,
            natoms,
            qsqsum,
            [l.x, l.y, l.z],
            self.order,
        )?;
        self.g_ewald = acc.g_ewald;
        // The accuracy model sizes 2·3·5-smooth meshes (as LAMMPS does);
        // this solver's radix-2 FFT rounds each dimension up to a power of
        // two, which only tightens the realized accuracy.
        self.grid = acc.grid.map(crate::fft::next_pow2);
        self.estimated_error = acc.error_kspace.max(acc.error_real);
        self.qsqsum = qsqsum;
        self.qsum = q.iter().sum();
        let (nx, ny, nz) = (self.grid[0], self.grid[1], self.grid[2]);
        let fft = Fft3d::new(nx, ny, nz)?;
        let len = fft.len();

        // Precompute Green's function and wavevectors.
        let two_pi = 2.0 * std::f64::consts::PI;
        let g2inv4 = 1.0 / (4.0 * self.g_ewald * self.g_ewald);
        let mut green = vec![0.0; len];
        let mut kvec = vec![Vec3::zero(); len];
        let bx2: Vec<f64> = (0..nx).map(|m| bmod2(self.order, m, nx)).collect();
        let by2: Vec<f64> = (0..ny).map(|m| bmod2(self.order, m, ny)).collect();
        let bz2: Vec<f64> = (0..nz).map(|m| bmod2(self.order, m, nz)).collect();
        for iz in 0..nz {
            let mz = if iz > nz / 2 {
                iz as i64 - nz as i64
            } else {
                iz as i64
            };
            for iy in 0..ny {
                let my = if iy > ny / 2 {
                    iy as i64 - ny as i64
                } else {
                    iy as i64
                };
                for ix in 0..nx {
                    let mx = if ix > nx / 2 {
                        ix as i64 - nx as i64
                    } else {
                        ix as i64
                    };
                    let idx = fft.index(ix, iy, iz);
                    if mx == 0 && my == 0 && mz == 0 {
                        continue;
                    }
                    let k = Vec3::new(
                        two_pi * mx as f64 / l.x,
                        two_pi * my as f64 / l.y,
                        two_pi * mz as f64 / l.z,
                    );
                    let k2 = k.norm2();
                    let a = (-k2 * g2inv4).exp() / k2;
                    green[idx] = a * bx2[ix] * by2[iy] * bz2[iz];
                    kvec[idx] = k;
                }
            }
        }
        self.green = green;
        self.kvec = kvec;
        self.rho = vec![Complex::ZERO; len];
        self.field = [
            vec![Complex::ZERO; len],
            vec![Complex::ZERO; len],
            vec![Complex::ZERO; len],
        ];
        self.fft = Some(fft);
        Ok(())
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    fn compute(&mut self, bx: &SimBox, x: &[V3], q: &[f64], f: &mut [V3]) -> EnergyVirial {
        let Some(fft) = self.fft.clone() else {
            return EnergyVirial::default();
        };
        let mut fft: Fft3d = fft;
        let (nx, ny, nz) = fft.dims();
        let l = bx.lengths();
        let lo = bx.lo();
        let volume = bx.volume();
        let n_atoms = x.len();
        // Arc bump so the RAII span guards don't borrow `self`.
        let rec = self.recorder.clone();

        // 1. Charge assignment ("make_rho" + "particle_map").
        let span = rec.span(KSPACE_LANE, "kspace", "charge_assign");
        for z in &mut self.rho {
            *z = Complex::ZERO;
        }
        let order = self.order;
        let mut bases: Vec<[i64; 3]> = Vec::with_capacity(n_atoms);
        let mut weights: Vec<[[f64; MAX_ORDER]; 3]> = Vec::with_capacity(n_atoms);
        for i in 0..n_atoms {
            let mut base = [0i64; 3];
            let mut w3 = [[0.0; MAX_ORDER]; 3];
            for d in 0..3 {
                let frac = ((x[i][d] - lo[d]) / l[d]).rem_euclid(1.0);
                let u = frac * self.grid[d] as f64;
                let (b, w) = self.bspline_weights(u);
                base[d] = b;
                w3[d] = w;
            }
            bases.push(base);
            weights.push(w3);
            for jz in 0..order {
                let gz = (base[2] + jz as i64).rem_euclid(nz as i64) as usize;
                for jy in 0..order {
                    let gy = (base[1] + jy as i64).rem_euclid(ny as i64) as usize;
                    let wzy = weights[i][2][jz] * weights[i][1][jy] * q[i];
                    for jx in 0..order {
                        let gx = (base[0] + jx as i64).rem_euclid(nx as i64) as usize;
                        self.rho[fft.index(gx, gy, gz)].re += wzy * weights[i][0][jx];
                    }
                }
            }
        }

        drop(span);

        // 2. Forward FFT.
        let span = rec.span(KSPACE_LANE, "kspace", "fft_forward");
        fft.transform(&mut self.rho, Direction::Forward)
            .expect("mesh allocated at setup");
        drop(span);

        // 3. Energy and field meshes in k-space.
        let span = rec.span(KSPACE_LANE, "kspace", "kspace_field");
        let mut energy = 0.0;
        let len = fft.len();
        for idx in 0..len {
            let g = self.green[idx];
            if g == 0.0 {
                self.field[0][idx] = Complex::ZERO;
                self.field[1][idx] = Complex::ZERO;
                self.field[2][idx] = Complex::ZERO;
                continue;
            }
            let r = self.rho[idx];
            energy += g * r.norm2();
            // F̂_d = -i k_d A B ρ̂.
            let minus_i_rho = Complex::new(r.im, -r.re); // -i * rho
            let k = self.kvec[idx];
            self.field[0][idx] = minus_i_rho.scale(g * k.x);
            self.field[1][idx] = minus_i_rho.scale(g * k.y);
            self.field[2][idx] = minus_i_rho.scale(g * k.z);
        }

        drop(span);

        // 4. Three inverse FFTs (un-normalized: multiply back by mesh size).
        let span = rec.span(KSPACE_LANE, "kspace", "fft_inverse");
        for d in 0..3 {
            fft.transform(&mut self.field[d], Direction::Inverse)
                .expect("mesh allocated at setup");
        }
        drop(span);
        let scale_back = len as f64;

        // 5. Interpolate the field to the particles ("interp").
        let span = rec.span(KSPACE_LANE, "kspace", "field_interp");
        let force_pref = self.qqr2e * 4.0 * std::f64::consts::PI / volume * scale_back;
        for i in 0..n_atoms {
            let base = bases[i];
            let w3 = &weights[i];
            let mut e_at = Vec3::zero();
            for jz in 0..order {
                let gz = (base[2] + jz as i64).rem_euclid(nz as i64) as usize;
                for jy in 0..order {
                    let gy = (base[1] + jy as i64).rem_euclid(ny as i64) as usize;
                    let wzy = w3[2][jz] * w3[1][jy];
                    for jx in 0..order {
                        let gx = (base[0] + jx as i64).rem_euclid(nx as i64) as usize;
                        let w = wzy * w3[0][jx];
                        let idx = fft.index(gx, gy, gz);
                        e_at.x += w * self.field[0][idx].re;
                        e_at.y += w * self.field[1][idx].re;
                        e_at.z += w * self.field[2][idx].re;
                    }
                }
            }
            f[i] += e_at * (force_pref * q[i]);
        }
        drop(span);
        self.fft = Some(fft);

        // Energy: (2π/V)Σ A B |ρ̂|², plus self/background corrections.
        let two_pi_over_v = 2.0 * std::f64::consts::PI / volume;
        let self_e = -self.g_ewald / std::f64::consts::PI.sqrt() * self.qsqsum;
        let background = -std::f64::consts::PI / (2.0 * volume * self.g_ewald * self.g_ewald)
            * self.qsum
            * self.qsum;
        let e_recip = two_pi_over_v * energy;
        EnergyVirial {
            evdwl: 0.0,
            ecoul: self.qqr2e * (e_recip + self_e + background),
            virial: self.qqr2e * e_recip,
        }
    }

    fn stats(&self) -> KspaceStats {
        KspaceStats {
            grid: self.grid,
            grid_points: self.grid.iter().product(),
            g_ewald: self.g_ewald,
            estimated_error: self.estimated_error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ewald::Ewald;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_neutral_system(n: usize, l: f64, seed: u64) -> (SimBox, Vec<V3>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bx = SimBox::cubic(l);
        let x: Vec<V3> = (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen::<f64>() * l,
                    rng.gen::<f64>() * l,
                    rng.gen::<f64>() * l,
                )
            })
            .collect();
        let q: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        (bx, x, q)
    }

    #[test]
    fn bspline_partition_of_unity() {
        let p = Pppm::new(5.0, 1e-4, 5);
        for k in 0..50 {
            let u = 0.02 * k as f64 * 7.3 + 0.01;
            let (_, w) = p.bspline_weights(u);
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "u = {u}, sum = {sum}");
            assert!(w.iter().all(|&wi| wi >= 0.0));
        }
    }

    #[test]
    fn bspline_orders_integrate_to_one() {
        for n in 1..=5usize {
            let steps = 20_000;
            let h = n as f64 / steps as f64;
            let integral: f64 = (0..steps)
                .map(|i| bspline(n, (i as f64 + 0.5) * h) * h)
                .sum();
            assert!((integral - 1.0).abs() < 1e-4, "order {n}: {integral}");
        }
    }

    #[test]
    fn pppm_energy_matches_ewald() {
        let (bx, x, q) = random_neutral_system(64, 12.0, 11);
        let mut ewald = Ewald::new(5.9, 1e-6);
        ewald.setup(&bx, &q).unwrap();
        let mut fe = vec![Vec3::zero(); x.len()];
        let ee = ewald.compute(&bx, &x, &q, &mut fe);

        let mut pppm = Pppm::new(5.9, 1e-6, 5);
        pppm.setup(&bx, &q).unwrap();
        let mut fp = vec![Vec3::zero(); x.len()];
        let ep = pppm.compute(&bx, &x, &q, &mut fp);

        // Same cutoff and accuracy target give the identical splitting
        // parameter g, so the recip + self + background totals estimate the
        // same quantity and differ only by mesh discretization. (With
        // mismatched accuracies the totals are NOT comparable: the self
        // term -g/sqrt(pi)·Σq² moves linearly with g.)
        assert_eq!(pppm.g_ewald(), ewald.g_ewald(), "matched inputs share g");
        let rel = (ep.ecoul - ee.ecoul).abs() / ee.ecoul.abs();
        assert!(
            rel < 0.05,
            "PPPM {} vs Ewald {} (rel {rel})",
            ep.ecoul,
            ee.ecoul
        );
    }

    #[test]
    fn pppm_forces_match_ewald_forces() {
        let (bx, x, q) = random_neutral_system(32, 10.0, 3);
        // Force a common g by using the same accuracy and cutoff.
        let mut ewald = Ewald::new(4.9, 1e-6);
        ewald.setup(&bx, &q).unwrap();
        let mut fe = vec![Vec3::zero(); x.len()];
        ewald.compute(&bx, &x, &q, &mut fe);

        let mut pppm = Pppm::new(4.9, 1e-6, 5);
        pppm.setup(&bx, &q).unwrap();
        let mut fp = vec![Vec3::zero(); x.len()];
        pppm.compute(&bx, &x, &q, &mut fp);

        // Compare per-atom forces; require small relative RMS deviation.
        // g_ewald matches exactly (same formula inputs), so the recip sums
        // target the same quantity.
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..x.len() {
            num += (fp[i] - fe[i]).norm2();
            den += fe[i].norm2();
        }
        let rel = (num / den).sqrt();
        assert!(rel < 0.02, "relative force deviation {rel}");
    }

    #[test]
    fn pppm_accuracy_improves_with_threshold() {
        let (bx, x, q) = random_neutral_system(48, 11.0, 8);
        let mut reference = Ewald::new(5.4, 1e-7);
        reference.setup(&bx, &q).unwrap();
        let mut f_ref = vec![Vec3::zero(); x.len()];
        reference.compute(&bx, &x, &q, &mut f_ref);
        let rms_ref: f64 = (f_ref.iter().map(|v| v.norm2()).sum::<f64>() / x.len() as f64).sqrt();

        let mut errors = Vec::new();
        for acc in [1e-3, 1e-5] {
            let mut pppm = Pppm::new(5.4, acc, 5);
            pppm.setup(&bx, &q).unwrap();
            let mut fp = vec![Vec3::zero(); x.len()];
            pppm.compute(&bx, &x, &q, &mut fp);
            let rms_err: f64 = (fp
                .iter()
                .zip(&f_ref)
                .map(|(a, b)| (*a - *b).norm2())
                .sum::<f64>()
                / x.len() as f64)
                .sqrt();
            errors.push(rms_err / rms_ref);
        }
        assert!(
            errors[1] < errors[0],
            "tighter threshold should reduce error: {errors:?}"
        );
    }

    #[test]
    fn pppm_net_force_is_small() {
        let (bx, x, q) = random_neutral_system(40, 9.0, 5);
        let mut pppm = Pppm::new(4.4, 1e-5, 5);
        pppm.setup(&bx, &q).unwrap();
        let mut f = vec![Vec3::zero(); x.len()];
        pppm.compute(&bx, &x, &q, &mut f);
        let net = f.iter().fold(Vec3::zero(), |a, &b| a + b);
        let scale: f64 = f.iter().map(|v| v.norm()).sum::<f64>() / x.len() as f64;
        assert!(net.norm() < 1e-6 * scale.max(1.0), "net force {net}");
    }

    #[test]
    fn setup_sizes_grid_from_threshold() {
        let (bx, _, q) = random_neutral_system(64, 12.0, 2);
        let mut coarse = Pppm::new(5.9, 1e-4, 5);
        coarse.setup(&bx, &q).unwrap();
        let mut tight = Pppm::new(5.9, 1e-7, 5);
        tight.setup(&bx, &q).unwrap();
        let gp = |p: &Pppm| p.grid().iter().product::<usize>();
        assert!(gp(&tight) > gp(&coarse));
    }

    #[test]
    fn compute_emits_kernel_phase_spans() {
        let (bx, x, q) = random_neutral_system(32, 10.0, 4);
        let mut pppm = Pppm::new(4.4, 1e-4, 5);
        let rec = Recorder::default();
        KspaceStyle::set_recorder(&mut pppm, rec.clone());
        pppm.setup(&bx, &q).unwrap();
        let mut f = vec![Vec3::zero(); x.len()];
        pppm.compute(&bx, &x, &q, &mut f);
        let names: Vec<&'static str> = rec.events().iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            vec![
                "charge_assign",
                "fft_forward",
                "kspace_field",
                "fft_inverse",
                "field_interp"
            ],
        );
        assert!(rec.events().iter().all(|e| e.cat == "kspace"));
    }

    #[test]
    fn rejects_chargeless_system() {
        let bx = SimBox::cubic(10.0);
        let mut pppm = Pppm::new(4.0, 1e-4, 5);
        assert!(pppm.setup(&bx, &[0.0; 8]).is_err());
    }
}
