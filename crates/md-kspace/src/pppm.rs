//! Particle-particle particle-mesh (LAMMPS `kspace_style pppm`).
//!
//! The long-range Coulomb contribution is computed by (1) spreading charges
//! onto a regular mesh with cardinal B-spline weights, (2) a forward 3D FFT,
//! (3) multiplication with the deconvolved Green's function
//! `4π exp(-k²/4g²)/k² · B(m)` (Essmann-style `B(m) = |b_x b_y b_z|²`
//! compensates the two B-spline smoothings), (4) ik-differentiation into
//! three field meshes and three inverse FFTs, and (5) interpolation of the
//! field back to the particles with the same weights — the
//! `make_rho` / `particle_map` / FFT / `interp` kernel structure the paper's
//! Figure 8 shows dominating the Rhodopsin GPU profile.

use crate::accuracy::KspaceAccuracy;
use crate::complex::Complex;
use crate::fft::{Direction, Fft3d};
use md_core::force::KspaceStats;
use md_core::{CoreError, EnergyVirial, KspaceStyle, Result, SimBox, Threads, Vec3, V3};
use md_observe::Recorder;

/// Trace lane the solver reports on (shares the engine's lane so the
/// sub-spans nest under the driver's `Kspace` span).
const KSPACE_LANE: u32 = 0;

/// First trace lane used for per-thread spans (matches the convention the
/// threaded pair kernels use, so fork/join shapes line up across crates).
const THREAD_LANE_BASE: u32 = 64;

/// Maximum supported assignment order (matches [`crate::accuracy::MAX_ORDER`]).
const MAX_ORDER: usize = 5;

/// The PPPM solver.
#[derive(Debug, Clone)]
pub struct Pppm {
    cutoff: f64,
    relative_error: f64,
    order: usize,
    g_ewald: f64,
    grid: [usize; 3],
    fft: Option<Fft3d>,
    /// Green's function `A(k) · B(m)` per mesh point (zero at m = 0 and at
    /// deconvolution singularities).
    green: Vec<f64>,
    /// Wavevector per mesh point and dimension.
    kvec: Vec<V3>,
    qsqsum: f64,
    qsum: f64,
    estimated_error: f64,
    qqr2e: f64,
    /// Scratch meshes.
    rho: Vec<Complex>,
    field: [Vec<Complex>; 3],
    recorder: Recorder,
    /// Shared-memory threading knob. Every parallel section here (charge
    /// spread, FFT line batches, k-space field, interpolation) decomposes by
    /// mesh slab or atom stripe with a fixed reduction order, so the result
    /// is bitwise identical to serial at ANY thread count — the
    /// `deterministic` flag changes nothing for this solver.
    threads: Threads,
}

impl Pppm {
    /// Creates a PPPM solver with assignment `order` (1..=5; LAMMPS default 5).
    ///
    /// # Panics
    ///
    /// Panics on a non-positive cutoff, a relative error outside `(0, 1)`,
    /// or an unsupported order.
    pub fn new(cutoff: f64, relative_error: f64, order: usize) -> Self {
        assert!(cutoff > 0.0, "cutoff must be positive");
        assert!(
            relative_error > 0.0 && relative_error < 1.0,
            "relative error must be in (0, 1)"
        );
        assert!(
            (1..=MAX_ORDER).contains(&order),
            "assignment order must be 1..={MAX_ORDER}"
        );
        Pppm {
            cutoff,
            relative_error,
            order,
            g_ewald: 0.0,
            grid: [0; 3],
            fft: None,
            green: Vec::new(),
            kvec: Vec::new(),
            qsqsum: 0.0,
            qsum: 0.0,
            estimated_error: 0.0,
            qqr2e: 1.0,
            rho: Vec::new(),
            field: [Vec::new(), Vec::new(), Vec::new()],
            recorder: Recorder::disabled(),
            threads: Threads::serial(),
        }
    }

    /// Sets the Coulomb conversion constant of the unit system.
    pub fn set_qqr2e(&mut self, qqr2e: f64) {
        self.qqr2e = qqr2e;
    }

    /// The splitting parameter chosen at setup.
    pub fn g_ewald(&self) -> f64 {
        self.g_ewald
    }

    /// Mesh dimensions chosen at setup.
    pub fn grid(&self) -> [usize; 3] {
        self.grid
    }
}

/// Evaluates the `n` B-spline weights of a particle at fractional mesh
/// coordinate `u` (in units of mesh cells). Returns the leftmost mesh index
/// and the weights. A free function so worker closures can call it without
/// capturing the solver.
fn bspline_row(n: usize, u: f64) -> (i64, [f64; MAX_ORDER]) {
    let k0 = u.floor() as i64;
    let mut w = [0.0f64; MAX_ORDER];
    // Mesh points p = k0 - n + 1 + j for j in 0..n; weight M_n(u - p).
    for (j, wj) in w.iter_mut().enumerate().take(n) {
        let p = k0 - n as i64 + 1 + j as i64;
        *wj = bspline(n, u - p as f64);
    }
    (k0 - n as i64 + 1, w)
}

/// Cardinal B-spline `M_n(x)` with support `(0, n)`.
fn bspline(n: usize, x: f64) -> f64 {
    if x <= 0.0 || x >= n as f64 {
        return 0.0;
    }
    if n == 1 {
        return 1.0; // box function on (0, 1)
    }
    if n == 2 {
        return 1.0 - (x - 1.0).abs();
    }
    let nm1 = (n - 1) as f64;
    (x / nm1) * bspline(n - 1, x) + ((n as f64 - x) / nm1) * bspline(n - 1, x - 1.0)
}

/// Essmann `|b(m)|²` deconvolution factor for one dimension.
fn bmod2(n_order: usize, m: usize, mesh: usize) -> f64 {
    // D(m) = Σ_{j=0}^{n-2} M_n(j+1) e^{2πi m j / K}; |b(m)|² = 1/|D|².
    let mut d = Complex::ZERO;
    for j in 0..=(n_order.saturating_sub(2)) {
        let w = bspline(n_order, (j + 1) as f64);
        d += Complex::cis(2.0 * std::f64::consts::PI * (m * j) as f64 / mesh as f64).scale(w);
    }
    let d2 = d.norm2();
    if d2 < 1e-10 {
        0.0 // singular mode (even orders at the Nyquist frequency)
    } else {
        1.0 / d2
    }
}

impl KspaceStyle for Pppm {
    fn name(&self) -> &'static str {
        "pppm"
    }

    fn setup(&mut self, bx: &SimBox, q: &[f64]) -> Result<()> {
        let natoms = q.len();
        let qsqsum: f64 = q.iter().map(|&qi| qi * qi).sum();
        if qsqsum <= 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "charges",
                reason: "pppm requires a charged system".to_string(),
            });
        }
        let l = bx.lengths();
        let acc = KspaceAccuracy::resolve(
            self.cutoff,
            self.relative_error,
            natoms,
            qsqsum,
            [l.x, l.y, l.z],
            self.order,
        )?;
        self.g_ewald = acc.g_ewald;
        // The accuracy model sizes 2·3·5-smooth meshes (as LAMMPS does);
        // this solver's radix-2 FFT rounds each dimension up to a power of
        // two, which only tightens the realized accuracy.
        self.grid = acc.grid.map(crate::fft::next_pow2);
        self.estimated_error = acc.error_kspace.max(acc.error_real);
        self.qsqsum = qsqsum;
        self.qsum = q.iter().sum();
        let (nx, ny, nz) = (self.grid[0], self.grid[1], self.grid[2]);
        let mut fft = Fft3d::new(nx, ny, nz)?;
        fft.set_threads(self.threads.count);
        let len = fft.len();

        // Precompute Green's function and wavevectors.
        let two_pi = 2.0 * std::f64::consts::PI;
        let g2inv4 = 1.0 / (4.0 * self.g_ewald * self.g_ewald);
        let mut green = vec![0.0; len];
        let mut kvec = vec![Vec3::zero(); len];
        let bx2: Vec<f64> = (0..nx).map(|m| bmod2(self.order, m, nx)).collect();
        let by2: Vec<f64> = (0..ny).map(|m| bmod2(self.order, m, ny)).collect();
        let bz2: Vec<f64> = (0..nz).map(|m| bmod2(self.order, m, nz)).collect();
        for iz in 0..nz {
            let mz = if iz > nz / 2 {
                iz as i64 - nz as i64
            } else {
                iz as i64
            };
            for iy in 0..ny {
                let my = if iy > ny / 2 {
                    iy as i64 - ny as i64
                } else {
                    iy as i64
                };
                for ix in 0..nx {
                    let mx = if ix > nx / 2 {
                        ix as i64 - nx as i64
                    } else {
                        ix as i64
                    };
                    let idx = fft.index(ix, iy, iz);
                    if mx == 0 && my == 0 && mz == 0 {
                        continue;
                    }
                    let k = Vec3::new(
                        two_pi * mx as f64 / l.x,
                        two_pi * my as f64 / l.y,
                        two_pi * mz as f64 / l.z,
                    );
                    let k2 = k.norm2();
                    let a = (-k2 * g2inv4).exp() / k2;
                    green[idx] = a * bx2[ix] * by2[iy] * bz2[iz];
                    kvec[idx] = k;
                }
            }
        }
        self.green = green;
        self.kvec = kvec;
        self.rho = vec![Complex::ZERO; len];
        self.field = [
            vec![Complex::ZERO; len],
            vec![Complex::ZERO; len],
            vec![Complex::ZERO; len],
        ];
        self.fft = Some(fft);
        Ok(())
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    fn tighten_accuracy(&mut self) -> bool {
        // One notch = one decade of target error, the same granularity users
        // pick on the LAMMPS `kspace_modify` line. Floor well above f64
        // noise; report "no change" once pinned there.
        let tightened = (self.relative_error * 0.1).max(1e-12);
        if tightened >= self.relative_error {
            return false;
        }
        self.relative_error = tightened;
        true
    }

    fn set_threads(&mut self, threads: Threads) {
        self.threads = threads;
        if let Some(fft) = self.fft.as_mut() {
            fft.set_threads(threads.count);
        }
    }

    fn compute(&mut self, bx: &SimBox, x: &[V3], q: &[f64], f: &mut [V3]) -> EnergyVirial {
        let Some(fft) = self.fft.clone() else {
            return EnergyVirial::default();
        };
        let mut fft: Fft3d = fft;
        let (nx, ny, nz) = fft.dims();
        let l = bx.lengths();
        let lo = bx.lo();
        let volume = bx.volume();
        let n_atoms = x.len();
        // Arc bump so the RAII span guards don't borrow `self`.
        let rec = self.recorder.clone();

        // 1. Charge assignment ("make_rho" + "particle_map").
        //
        // Threaded by OWNED Z-SLAB: every worker walks all atoms but only
        // scatters into the contiguous range of z planes it owns. Each mesh
        // point therefore accumulates its contributions in atom order — the
        // exact order the serial loop uses — so the mesh is bitwise
        // identical to serial at any thread count.
        let span = rec.span(KSPACE_LANE, "kspace", "charge_assign");
        let order = self.order;
        let grid = self.grid;
        let plane = nx * ny;
        let t_req = self.threads.count.max(1);
        let mut bases: Vec<[i64; 3]> = vec![[0i64; 3]; n_atoms];
        let mut weights: Vec<[[f64; MAX_ORDER]; 3]> = vec![[[0.0; MAX_ORDER]; 3]; n_atoms];
        // B-spline bases/weights are per-atom elementwise: stripe-parallel.
        let eval = |lo_i: usize, bs: &mut [[i64; 3]], ws: &mut [[[f64; MAX_ORDER]; 3]]| {
            for (di, (b3, w3)) in bs.iter_mut().zip(ws.iter_mut()).enumerate() {
                let xi = x[lo_i + di];
                for d in 0..3 {
                    let frac = ((xi[d] - lo[d]) / l[d]).rem_euclid(1.0);
                    let (b, w) = bspline_row(order, frac * grid[d] as f64);
                    b3[d] = b;
                    w3[d] = w;
                }
            }
        };
        let t = t_req.min(n_atoms.max(1));
        if t > 1 {
            let stripe = n_atoms.div_ceil(t);
            crossbeam::thread::scope(|s| {
                for (k, (bs, ws)) in bases
                    .chunks_mut(stripe)
                    .zip(weights.chunks_mut(stripe))
                    .enumerate()
                {
                    let eval = &eval;
                    s.spawn(move |_| eval(k * stripe, bs, ws));
                }
            })
            .expect("pppm worker panicked");
        } else {
            eval(0, &mut bases, &mut weights);
        }
        let spread = |z_lo: usize, z_hi: usize, slab: &mut [Complex]| {
            for z in slab.iter_mut() {
                *z = Complex::ZERO;
            }
            for i in 0..n_atoms {
                let base = bases[i];
                let w3 = &weights[i];
                for jz in 0..order {
                    let gz = (base[2] + jz as i64).rem_euclid(nz as i64) as usize;
                    if gz < z_lo || gz >= z_hi {
                        continue;
                    }
                    for jy in 0..order {
                        let gy = (base[1] + jy as i64).rem_euclid(ny as i64) as usize;
                        let wzy = w3[2][jz] * w3[1][jy] * q[i];
                        for jx in 0..order {
                            let gx = (base[0] + jx as i64).rem_euclid(nx as i64) as usize;
                            slab[(gz - z_lo) * plane + gy * nx + gx].re += wzy * w3[0][jx];
                        }
                    }
                }
            }
        };
        let t = t_req.min(nz);
        if t > 1 {
            let planes_per = nz.div_ceil(t);
            crossbeam::thread::scope(|s| {
                for (k, slab) in self.rho.chunks_mut(plane * planes_per).enumerate() {
                    let spread = &spread;
                    let rec = &rec;
                    s.spawn(move |_| {
                        let _guard = rec.span(THREAD_LANE_BASE + k as u32, "thread", "pppm_spread");
                        let z_lo = k * planes_per;
                        spread(z_lo, (z_lo + planes_per).min(nz), slab);
                    });
                }
            })
            .expect("pppm worker panicked");
        } else {
            spread(0, nz, &mut self.rho);
        }

        drop(span);

        // 2. Forward FFT.
        let span = rec.span(KSPACE_LANE, "kspace", "fft_forward");
        fft.transform(&mut self.rho, Direction::Forward)
            .expect("mesh allocated at setup");
        drop(span);

        // 3. Energy and field meshes in k-space.
        //
        // The field writes are elementwise; the energy reduction is kept
        // thread-count invariant by always accumulating one partial per z
        // plane (in-plane flat order) and summing the partials in ascending
        // plane order, whether one thread runs all planes or many run slabs.
        let span = rec.span(KSPACE_LANE, "kspace", "kspace_field");
        let len = fft.len();
        let green = &self.green;
        let kvec = &self.kvec;
        let rho = &self.rho;
        let mut energy_parts = vec![0.0f64; nz];
        let field_pass = |z_lo: usize,
                          f0: &mut [Complex],
                          f1: &mut [Complex],
                          f2: &mut [Complex],
                          eparts: &mut [f64]| {
            for (p, ep) in eparts.iter_mut().enumerate() {
                for j in 0..plane {
                    let idx = (z_lo + p) * plane + j;
                    let li = p * plane + j;
                    let g = green[idx];
                    if g == 0.0 {
                        f0[li] = Complex::ZERO;
                        f1[li] = Complex::ZERO;
                        f2[li] = Complex::ZERO;
                        continue;
                    }
                    let r = rho[idx];
                    *ep += g * r.norm2();
                    // F̂_d = -i k_d A B ρ̂.
                    let minus_i_rho = Complex::new(r.im, -r.re); // -i * rho
                    let k = kvec[idx];
                    f0[li] = minus_i_rho.scale(g * k.x);
                    f1[li] = minus_i_rho.scale(g * k.y);
                    f2[li] = minus_i_rho.scale(g * k.z);
                }
            }
        };
        let [fx, fy, fz] = &mut self.field;
        let t = t_req.min(nz);
        if t > 1 {
            let planes_per = nz.div_ceil(t);
            let slab = plane * planes_per;
            crossbeam::thread::scope(|s| {
                for (k, (((c0, c1), c2), ep)) in fx
                    .chunks_mut(slab)
                    .zip(fy.chunks_mut(slab))
                    .zip(fz.chunks_mut(slab))
                    .zip(energy_parts.chunks_mut(planes_per))
                    .enumerate()
                {
                    let field_pass = &field_pass;
                    s.spawn(move |_| field_pass(k * planes_per, c0, c1, c2, ep));
                }
            })
            .expect("pppm worker panicked");
        } else {
            field_pass(0, fx, fy, fz, &mut energy_parts);
        }
        let energy: f64 = energy_parts.iter().sum();

        drop(span);

        // 4. Three inverse FFTs (un-normalized: multiply back by mesh size).
        let span = rec.span(KSPACE_LANE, "kspace", "fft_inverse");
        for d in 0..3 {
            fft.transform(&mut self.field[d], Direction::Inverse)
                .expect("mesh allocated at setup");
        }
        drop(span);
        let scale_back = len as f64;

        // 5. Interpolate the field to the particles ("interp"). Per-atom
        // elementwise gather: stripe-parallel, bitwise identical to serial.
        let span = rec.span(KSPACE_LANE, "kspace", "field_interp");
        let force_pref = self.qqr2e * 4.0 * std::f64::consts::PI / volume * scale_back;
        let field = &self.field;
        let interp = |lo_i: usize, fs: &mut [V3]| {
            for (di, fi) in fs.iter_mut().enumerate() {
                let i = lo_i + di;
                let base = bases[i];
                let w3 = &weights[i];
                let mut e_at = Vec3::zero();
                for jz in 0..order {
                    let gz = (base[2] + jz as i64).rem_euclid(nz as i64) as usize;
                    for jy in 0..order {
                        let gy = (base[1] + jy as i64).rem_euclid(ny as i64) as usize;
                        let wzy = w3[2][jz] * w3[1][jy];
                        for jx in 0..order {
                            let gx = (base[0] + jx as i64).rem_euclid(nx as i64) as usize;
                            let w = wzy * w3[0][jx];
                            let idx = (gz * ny + gy) * nx + gx;
                            e_at.x += w * field[0][idx].re;
                            e_at.y += w * field[1][idx].re;
                            e_at.z += w * field[2][idx].re;
                        }
                    }
                }
                *fi += e_at * (force_pref * q[i]);
            }
        };
        let t = t_req.min(n_atoms.max(1));
        if t > 1 {
            let stripe = n_atoms.div_ceil(t);
            crossbeam::thread::scope(|s| {
                for (k, fs) in f.chunks_mut(stripe).enumerate() {
                    let interp = &interp;
                    let rec = &rec;
                    s.spawn(move |_| {
                        let _guard = rec.span(THREAD_LANE_BASE + k as u32, "thread", "pppm_interp");
                        interp(k * stripe, fs);
                    });
                }
            })
            .expect("pppm worker panicked");
        } else {
            interp(0, f);
        }
        drop(span);
        self.fft = Some(fft);

        // Energy: (2π/V)Σ A B |ρ̂|², plus self/background corrections.
        let two_pi_over_v = 2.0 * std::f64::consts::PI / volume;
        let self_e = -self.g_ewald / std::f64::consts::PI.sqrt() * self.qsqsum;
        let background = -std::f64::consts::PI / (2.0 * volume * self.g_ewald * self.g_ewald)
            * self.qsum
            * self.qsum;
        let e_recip = two_pi_over_v * energy;
        EnergyVirial {
            evdwl: 0.0,
            ecoul: self.qqr2e * (e_recip + self_e + background),
            virial: self.qqr2e * e_recip,
        }
    }

    fn stats(&self) -> KspaceStats {
        KspaceStats {
            grid: self.grid,
            grid_points: self.grid.iter().product(),
            g_ewald: self.g_ewald,
            estimated_error: self.estimated_error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ewald::Ewald;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_neutral_system(n: usize, l: f64, seed: u64) -> (SimBox, Vec<V3>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bx = SimBox::cubic(l);
        let x: Vec<V3> = (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen::<f64>() * l,
                    rng.gen::<f64>() * l,
                    rng.gen::<f64>() * l,
                )
            })
            .collect();
        let q: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        (bx, x, q)
    }

    #[test]
    fn bspline_partition_of_unity() {
        for k in 0..50 {
            let u = 0.02 * k as f64 * 7.3 + 0.01;
            let (_, w) = bspline_row(5, u);
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "u = {u}, sum = {sum}");
            assert!(w.iter().all(|&wi| wi >= 0.0));
        }
    }

    #[test]
    fn bspline_orders_integrate_to_one() {
        for n in 1..=5usize {
            let steps = 20_000;
            let h = n as f64 / steps as f64;
            let integral: f64 = (0..steps)
                .map(|i| bspline(n, (i as f64 + 0.5) * h) * h)
                .sum();
            assert!((integral - 1.0).abs() < 1e-4, "order {n}: {integral}");
        }
    }

    #[test]
    fn pppm_energy_matches_ewald() {
        let (bx, x, q) = random_neutral_system(64, 12.0, 11);
        let mut ewald = Ewald::new(5.9, 1e-6);
        ewald.setup(&bx, &q).unwrap();
        let mut fe = vec![Vec3::zero(); x.len()];
        let ee = ewald.compute(&bx, &x, &q, &mut fe);

        let mut pppm = Pppm::new(5.9, 1e-6, 5);
        pppm.setup(&bx, &q).unwrap();
        let mut fp = vec![Vec3::zero(); x.len()];
        let ep = pppm.compute(&bx, &x, &q, &mut fp);

        // Same cutoff and accuracy target give the identical splitting
        // parameter g, so the recip + self + background totals estimate the
        // same quantity and differ only by mesh discretization. (With
        // mismatched accuracies the totals are NOT comparable: the self
        // term -g/sqrt(pi)·Σq² moves linearly with g.)
        assert_eq!(pppm.g_ewald(), ewald.g_ewald(), "matched inputs share g");
        let rel = (ep.ecoul - ee.ecoul).abs() / ee.ecoul.abs();
        assert!(
            rel < 0.05,
            "PPPM {} vs Ewald {} (rel {rel})",
            ep.ecoul,
            ee.ecoul
        );
    }

    #[test]
    fn pppm_forces_match_ewald_forces() {
        let (bx, x, q) = random_neutral_system(32, 10.0, 3);
        // Force a common g by using the same accuracy and cutoff.
        let mut ewald = Ewald::new(4.9, 1e-6);
        ewald.setup(&bx, &q).unwrap();
        let mut fe = vec![Vec3::zero(); x.len()];
        ewald.compute(&bx, &x, &q, &mut fe);

        let mut pppm = Pppm::new(4.9, 1e-6, 5);
        pppm.setup(&bx, &q).unwrap();
        let mut fp = vec![Vec3::zero(); x.len()];
        pppm.compute(&bx, &x, &q, &mut fp);

        // Compare per-atom forces; require small relative RMS deviation.
        // g_ewald matches exactly (same formula inputs), so the recip sums
        // target the same quantity.
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..x.len() {
            num += (fp[i] - fe[i]).norm2();
            den += fe[i].norm2();
        }
        let rel = (num / den).sqrt();
        assert!(rel < 0.02, "relative force deviation {rel}");
    }

    #[test]
    fn pppm_accuracy_improves_with_threshold() {
        let (bx, x, q) = random_neutral_system(48, 11.0, 8);
        let mut reference = Ewald::new(5.4, 1e-7);
        reference.setup(&bx, &q).unwrap();
        let mut f_ref = vec![Vec3::zero(); x.len()];
        reference.compute(&bx, &x, &q, &mut f_ref);
        let rms_ref: f64 = (f_ref.iter().map(|v| v.norm2()).sum::<f64>() / x.len() as f64).sqrt();

        let mut errors = Vec::new();
        for acc in [1e-3, 1e-5] {
            let mut pppm = Pppm::new(5.4, acc, 5);
            pppm.setup(&bx, &q).unwrap();
            let mut fp = vec![Vec3::zero(); x.len()];
            pppm.compute(&bx, &x, &q, &mut fp);
            let rms_err: f64 = (fp
                .iter()
                .zip(&f_ref)
                .map(|(a, b)| (*a - *b).norm2())
                .sum::<f64>()
                / x.len() as f64)
                .sqrt();
            errors.push(rms_err / rms_ref);
        }
        assert!(
            errors[1] < errors[0],
            "tighter threshold should reduce error: {errors:?}"
        );
    }

    #[test]
    fn pppm_net_force_is_small() {
        let (bx, x, q) = random_neutral_system(40, 9.0, 5);
        let mut pppm = Pppm::new(4.4, 1e-5, 5);
        pppm.setup(&bx, &q).unwrap();
        let mut f = vec![Vec3::zero(); x.len()];
        pppm.compute(&bx, &x, &q, &mut f);
        let net = f.iter().fold(Vec3::zero(), |a, &b| a + b);
        let scale: f64 = f.iter().map(|v| v.norm()).sum::<f64>() / x.len() as f64;
        assert!(net.norm() < 1e-6 * scale.max(1.0), "net force {net}");
    }

    #[test]
    fn setup_sizes_grid_from_threshold() {
        let (bx, _, q) = random_neutral_system(64, 12.0, 2);
        let mut coarse = Pppm::new(5.9, 1e-4, 5);
        coarse.setup(&bx, &q).unwrap();
        let mut tight = Pppm::new(5.9, 1e-7, 5);
        tight.setup(&bx, &q).unwrap();
        let gp = |p: &Pppm| p.grid().iter().product::<usize>();
        assert!(gp(&tight) > gp(&coarse));
    }

    #[test]
    fn tighten_accuracy_shrinks_error_and_saturates() {
        let (bx, _, q) = random_neutral_system(64, 12.0, 2);
        let mut pppm = Pppm::new(5.9, 1e-4, 5);
        pppm.setup(&bx, &q).unwrap();
        let before = pppm.stats().estimated_error;
        assert!(KspaceStyle::tighten_accuracy(&mut pppm));
        pppm.setup(&bx, &q).unwrap();
        assert!(
            pppm.stats().estimated_error < before,
            "{} -> {}",
            before,
            pppm.stats().estimated_error
        );
        // Repeated tightening eventually hits the floor and reports no change.
        for _ in 0..16 {
            KspaceStyle::tighten_accuracy(&mut pppm);
        }
        assert!(!KspaceStyle::tighten_accuracy(&mut pppm));
    }

    #[test]
    fn compute_emits_kernel_phase_spans() {
        let (bx, x, q) = random_neutral_system(32, 10.0, 4);
        let mut pppm = Pppm::new(4.4, 1e-4, 5);
        let rec = Recorder::default();
        KspaceStyle::set_recorder(&mut pppm, rec.clone());
        pppm.setup(&bx, &q).unwrap();
        let mut f = vec![Vec3::zero(); x.len()];
        pppm.compute(&bx, &x, &q, &mut f);
        let names: Vec<&'static str> = rec.events().iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            vec![
                "charge_assign",
                "fft_forward",
                "kspace_field",
                "fft_inverse",
                "field_interp"
            ],
        );
        assert!(rec.events().iter().all(|e| e.cat == "kspace"));
    }

    #[test]
    fn threaded_compute_is_bitwise_identical_to_serial() {
        let (bx, x, q) = random_neutral_system(48, 11.0, 7);
        let mut serial = Pppm::new(4.9, 1e-5, 5);
        serial.setup(&bx, &q).unwrap();
        let mut f_serial = vec![Vec3::zero(); x.len()];
        let e_serial = serial.compute(&bx, &x, &q, &mut f_serial);
        assert!(e_serial.ecoul.is_finite());
        for t in [2usize, 3, 4, 7] {
            let mut pppm = Pppm::new(4.9, 1e-5, 5);
            pppm.setup(&bx, &q).unwrap();
            // After setup, to prove the knob reaches an already-built FFT.
            KspaceStyle::set_threads(&mut pppm, Threads::fast(t));
            let mut f = vec![Vec3::zero(); x.len()];
            let e = pppm.compute(&bx, &x, &q, &mut f);
            assert_eq!(e.ecoul.to_bits(), e_serial.ecoul.to_bits(), "t = {t}");
            assert_eq!(e.virial.to_bits(), e_serial.virial.to_bits(), "t = {t}");
            for (a, b) in f.iter().zip(&f_serial) {
                for d in 0..3 {
                    assert_eq!(a[d].to_bits(), b[d].to_bits(), "t = {t}, dim {d}");
                }
            }
        }
    }

    #[test]
    fn threaded_compute_emits_per_thread_spans() {
        let (bx, x, q) = random_neutral_system(32, 10.0, 4);
        let mut pppm = Pppm::new(4.4, 1e-4, 5);
        let rec = Recorder::default();
        KspaceStyle::set_recorder(&mut pppm, rec.clone());
        KspaceStyle::set_threads(&mut pppm, Threads::fast(2));
        pppm.setup(&bx, &q).unwrap();
        let mut f = vec![Vec3::zero(); x.len()];
        pppm.compute(&bx, &x, &q, &mut f);
        let events = rec.events();
        let thread_events: Vec<_> = events.iter().filter(|e| e.cat == "thread").collect();
        assert!(
            thread_events.iter().any(|e| e.name == "pppm_spread"),
            "expected pppm_spread thread spans"
        );
        assert!(
            thread_events.iter().any(|e| e.name == "pppm_interp"),
            "expected pppm_interp thread spans"
        );
        assert!(thread_events
            .iter()
            .all(|e| e.lane >= THREAD_LANE_BASE && e.lane < THREAD_LANE_BASE + 2));
    }

    #[test]
    fn rejects_chargeless_system() {
        let bx = SimBox::cubic(10.0);
        let mut pppm = Pppm::new(4.0, 1e-4, 5);
        assert!(pppm.setup(&bx, &[0.0; 8]).is_err());
    }
}
