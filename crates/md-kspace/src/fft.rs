//! Iterative radix-2 Cooley-Tukey FFT, 1D and 3D.
//!
//! LAMMPS delegates its PPPM transforms to FFTW/MKL; here the transform is
//! implemented from scratch (power-of-two sizes), which is all PPPM needs
//! since the mesh sizing rounds up to powers of two.

use crate::complex::Complex;
use md_core::{CoreError, Result};

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `X(k) = Σ x(n) e^{-2πi k n / N}`.
    Forward,
    /// `x(n) = (1/N) Σ X(k) e^{+2πi k n / N}` (normalized).
    Inverse,
}

/// In-place 1D radix-2 FFT.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if the length is not a power of
/// two.
pub fn fft1d(data: &mut [Complex], dir: Direction) -> Result<()> {
    let n = data.len();
    if n == 0 || n & (n - 1) != 0 {
        return Err(CoreError::InvalidParameter {
            name: "fft length",
            reason: format!("length {n} is not a power of two"),
        });
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
    if dir == Direction::Inverse {
        let inv = 1.0 / n as f64;
        for z in data.iter_mut() {
            *z = z.scale(inv);
        }
    }
    Ok(())
}

/// Naive O(N²) DFT, used as the test oracle.
pub fn dft_reference(data: &[Complex], dir: Direction) -> Vec<Complex> {
    let n = data.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut out = vec![Complex::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        for (t, &x) in data.iter().enumerate() {
            *o += x * Complex::cis(sign * 2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64);
        }
    }
    if dir == Direction::Inverse {
        for o in &mut out {
            *o = o.scale(1.0 / n as f64);
        }
    }
    out
}

/// A 3D FFT over an `nx × ny × nz` mesh stored row-major (`x` fastest).
///
/// The transform can batch its 1D lines across threads (see
/// [`Fft3d::set_threads`]). Every line is an independent 1D FFT over the
/// same input values no matter which thread runs it, so the threaded
/// transform is bitwise identical to the serial one at any thread count.
#[derive(Debug, Clone)]
pub struct Fft3d {
    nx: usize,
    ny: usize,
    nz: usize,
    threads: usize,
    scratch: Vec<Complex>,
}

impl Fft3d {
    /// Creates a transform for the given mesh dimensions.
    ///
    /// # Errors
    ///
    /// Returns an error unless every dimension is a power of two.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Result<Self> {
        for (name, n) in [("nx", nx), ("ny", ny), ("nz", nz)] {
            if n == 0 || n & (n - 1) != 0 {
                return Err(CoreError::InvalidParameter {
                    name: "fft mesh",
                    reason: format!("{name} = {n} is not a power of two"),
                });
            }
        }
        Ok(Fft3d {
            nx,
            ny,
            nz,
            threads: 1,
            scratch: vec![Complex::ZERO; nx.max(ny).max(nz)],
        })
    }

    /// Sets how many threads [`Fft3d::transform`] batches its 1D lines over
    /// (clamped to at least 1). The result is bitwise independent of the
    /// thread count.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Thread count used by [`Fft3d::transform`].
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Mesh dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Total mesh points.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Whether the mesh is empty (it never is for a constructed transform).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flattened index of `(ix, iy, iz)`.
    #[inline(always)]
    pub fn index(&self, ix: usize, iy: usize, iz: usize) -> usize {
        (iz * self.ny + iy) * self.nx + ix
    }

    /// Transforms `data` (length `nx·ny·nz`) in place.
    ///
    /// # Errors
    ///
    /// Returns an error if `data` has the wrong length.
    pub fn transform(&mut self, data: &mut [Complex], dir: Direction) -> Result<()> {
        if data.len() != self.len() {
            return Err(CoreError::LengthMismatch {
                what: "fft mesh data",
                expected: self.len(),
                found: data.len(),
            });
        }
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        if self.threads > 1 {
            return self.transform_threaded(data, dir);
        }
        // X lines are contiguous.
        for iz in 0..nz {
            for iy in 0..ny {
                let base = self.index(0, iy, iz);
                fft1d(&mut data[base..base + nx], dir)?;
            }
        }
        // Y lines (stride nx).
        for iz in 0..nz {
            for ix in 0..nx {
                for iy in 0..ny {
                    self.scratch[iy] = data[self.index(ix, iy, iz)];
                }
                fft1d(&mut self.scratch[..ny], dir)?;
                for iy in 0..ny {
                    data[self.index(ix, iy, iz)] = self.scratch[iy];
                }
            }
        }
        // Z lines (stride nx·ny).
        for iy in 0..ny {
            for ix in 0..nx {
                for iz in 0..nz {
                    self.scratch[iz] = data[self.index(ix, iy, iz)];
                }
                fft1d(&mut self.scratch[..nz], dir)?;
                for iz in 0..nz {
                    data[self.index(ix, iy, iz)] = self.scratch[iz];
                }
            }
        }
        Ok(())
    }

    /// Threaded transform body. The x and y passes are plane-local, so each
    /// thread owns a contiguous slab of z planes; the z pass stripes the
    /// `nx·ny` lines across threads, each gathering and transforming its
    /// lines into a private buffer before a serial scatter.
    ///
    /// The mesh dimensions are powers of two by construction and `data` has
    /// been length-checked, so the inner `fft1d` calls cannot fail.
    fn transform_threaded(&self, data: &mut [Complex], dir: Direction) -> Result<()> {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let plane = nx * ny;
        // X and Y passes: slab-parallel over z planes, private y scratch.
        let planes_per = nz.div_ceil(self.threads.min(nz));
        crossbeam::thread::scope(|s| {
            for slab in data.chunks_mut(plane * planes_per) {
                s.spawn(move |_| {
                    let mut scratch = vec![Complex::ZERO; ny];
                    for zplane in slab.chunks_mut(plane) {
                        for iy in 0..ny {
                            let base = iy * nx;
                            fft1d(&mut zplane[base..base + nx], dir)
                                .expect("x line is a power of two");
                        }
                        for ix in 0..nx {
                            for iy in 0..ny {
                                scratch[iy] = zplane[iy * nx + ix];
                            }
                            fft1d(&mut scratch[..ny], dir).expect("y line is a power of two");
                            for iy in 0..ny {
                                zplane[iy * nx + ix] = scratch[iy];
                            }
                        }
                    }
                });
            }
        })
        .expect("fft worker panicked");
        // Z pass: line l = iy·nx + ix sits at data[iz·plane + l]. Stripe the
        // lines; each thread transforms its stripe into a private buffer.
        let lines_per = plane.div_ceil(self.threads.min(plane));
        let stripes: Vec<(usize, usize)> = (0..plane)
            .step_by(lines_per)
            .map(|lo| (lo, (lo + lines_per).min(plane)))
            .collect();
        let results: Vec<Vec<Complex>> = crossbeam::thread::scope(|s| {
            let data = &*data;
            let handles: Vec<_> = stripes
                .iter()
                .map(|&(lo, hi)| {
                    s.spawn(move |_| {
                        let mut buf = vec![Complex::ZERO; (hi - lo) * nz];
                        for li in 0..hi - lo {
                            let line = &mut buf[li * nz..(li + 1) * nz];
                            for (iz, v) in line.iter_mut().enumerate() {
                                *v = data[iz * plane + lo + li];
                            }
                            fft1d(line, dir).expect("z line is a power of two");
                        }
                        buf
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fft worker panicked"))
                .collect()
        })
        .expect("fft worker panicked");
        for (&(lo, hi), buf) in stripes.iter().zip(&results) {
            for li in 0..hi - lo {
                for iz in 0..nz {
                    data[iz * plane + lo + li] = buf[li * nz + iz];
                }
            }
        }
        Ok(())
    }
}

/// Rounds `n` up to the next power of two (min 2).
pub fn next_pow2(n: usize) -> usize {
    let mut p = 2;
    while p < n {
        p <<= 1;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_signal(n: usize, seed: u64) -> Vec<Complex> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect()
    }

    #[test]
    fn fft_matches_reference_dft() {
        for n in [2usize, 4, 8, 32, 128] {
            let x = random_signal(n, n as u64);
            let mut got = x.clone();
            fft1d(&mut got, Direction::Forward).unwrap();
            let want = dft_reference(&x, Direction::Forward);
            for (g, w) in got.iter().zip(&want) {
                assert!((*g - *w).norm() < 1e-9 * n as f64, "n = {n}");
            }
        }
    }

    #[test]
    fn forward_then_inverse_is_identity() {
        let x = random_signal(256, 9);
        let mut y = x.clone();
        fft1d(&mut y, Direction::Forward).unwrap();
        fft1d(&mut y, Direction::Inverse).unwrap();
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).norm() < 1e-12);
        }
    }

    #[test]
    fn parseval_theorem() {
        let x = random_signal(128, 3);
        let mut y = x.clone();
        fft1d(&mut y, Direction::Forward).unwrap();
        let e_time: f64 = x.iter().map(|z| z.norm2()).sum();
        let e_freq: f64 = y.iter().map(|z| z.norm2()).sum::<f64>() / 128.0;
        assert!((e_time - e_freq).abs() < 1e-10);
    }

    #[test]
    fn rejects_non_power_of_two() {
        let mut x = random_signal(12, 1);
        assert!(fft1d(&mut x, Direction::Forward).is_err());
        assert!(Fft3d::new(8, 12, 8).is_err());
    }

    #[test]
    fn fft3d_roundtrip_and_delta() {
        let mut fft = Fft3d::new(8, 4, 16).unwrap();
        let mut data = vec![Complex::ZERO; fft.len()];
        // A delta function transforms to all-ones.
        data[0] = Complex::ONE;
        fft.transform(&mut data, Direction::Forward).unwrap();
        assert!(data.iter().all(|z| (*z - Complex::ONE).norm() < 1e-12));
        fft.transform(&mut data, Direction::Inverse).unwrap();
        assert!((data[0] - Complex::ONE).norm() < 1e-12);
        assert!(data[1..].iter().all(|z| z.norm() < 1e-12));
    }

    #[test]
    fn fft3d_plane_wave_is_a_delta_in_k() {
        let mut fft = Fft3d::new(8, 8, 8).unwrap();
        let mut data = vec![Complex::ZERO; fft.len()];
        let (kx, ky, kz) = (3usize, 1usize, 5usize);
        for iz in 0..8 {
            for iy in 0..8 {
                for ix in 0..8 {
                    let phase =
                        2.0 * std::f64::consts::PI * (kx * ix + ky * iy + kz * iz) as f64 / 8.0;
                    data[fft.index(ix, iy, iz)] = Complex::cis(phase);
                }
            }
        }
        fft.transform(&mut data, Direction::Forward).unwrap();
        let peak = fft.index(kx, ky, kz);
        assert!((data[peak].re - 512.0).abs() < 1e-9);
        for (i, z) in data.iter().enumerate() {
            if i != peak {
                assert!(z.norm() < 1e-9, "leakage at {i}");
            }
        }
    }

    #[test]
    fn threaded_transform_is_bitwise_identical_to_serial() {
        for (nx, ny, nz) in [(8usize, 4usize, 16usize), (4, 4, 4), (2, 2, 2)] {
            let mut fft = Fft3d::new(nx, ny, nz).unwrap();
            let input = random_signal(fft.len(), (nx * ny * nz) as u64);
            let mut serial = input.clone();
            fft.transform(&mut serial, Direction::Forward).unwrap();
            for t in [2usize, 3, 5, 8] {
                fft.set_threads(t);
                let mut threaded = input.clone();
                fft.transform(&mut threaded, Direction::Forward).unwrap();
                for (a, b) in serial.iter().zip(&threaded) {
                    assert_eq!(a.re.to_bits(), b.re.to_bits(), "t = {t}");
                    assert_eq!(a.im.to_bits(), b.im.to_bits(), "t = {t}");
                }
            }
            fft.set_threads(1);
        }
    }

    #[test]
    fn next_pow2_rounds_up() {
        assert_eq!(next_pow2(1), 2);
        assert_eq!(next_pow2(8), 8);
        assert_eq!(next_pow2(9), 16);
        assert_eq!(next_pow2(100), 128);
    }
}
