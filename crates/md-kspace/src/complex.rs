//! Minimal complex arithmetic for the FFT and reciprocal-space sums.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates `re + i·im`.
    #[inline(always)]
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    #[inline(always)]
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    #[inline(always)]
    pub fn norm2(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline(always)]
    pub fn norm(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Multiplication by a real scalar.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline(always)]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline(always)]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline(always)]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline(always)]
    fn div(self, o: Complex) -> Complex {
        let d = o.norm2();
        Complex::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline(always)]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    #[inline(always)]
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl SubAssign for Complex {
    #[inline(always)]
    fn sub_assign(&mut self, o: Complex) {
        self.re -= o.re;
        self.im -= o.im;
    }
}

impl MulAssign for Complex {
    #[inline(always)]
    fn mul_assign(&mut self, o: Complex) {
        *self = *self * o;
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_spotcheck() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-0.5, 3.0);
        assert_eq!(a + b, Complex::new(0.5, 5.0));
        assert_eq!(a * Complex::ONE, a);
        let q = (a / b) * b;
        assert!((q - a).norm() < 1e-14);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let z = Complex::cis(k as f64 * 0.7);
            assert!((z.norm() - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn conjugate_multiplication_gives_norm2() {
        let a = Complex::new(3.0, -4.0);
        let p = a * a.conj();
        assert!((p.re - 25.0).abs() < 1e-12 && p.im.abs() < 1e-12);
        assert_eq!(a.norm(), 5.0);
    }
}
