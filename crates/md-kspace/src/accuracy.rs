//! Accuracy-driven parameter selection for Ewald/PPPM, following the LAMMPS
//! estimators (Kolafa-Perram real-space error, Deserno-Holm ik-differentiation
//! k-space error).
//!
//! The paper's Section 7 sweeps the *relative force error threshold*
//! (`kspace_modify`/`kspace_style pppm 1e-4 … 1e-7`); everything downstream —
//! splitting parameter, FFT mesh size, and therefore k-space runtime and MPI
//! traffic — follows from the machinery in this module.

use md_core::{CoreError, Result};

/// Deserno-Holm coefficients for the ik-differentiation error estimate,
/// indexed `ACONS[order][m]` (orders 1..=5, as in LAMMPS `pppm.cpp`).
const ACONS: [&[f64]; 6] = [
    &[],
    &[2.0 / 3.0],
    &[1.0 / 50.0, 5.0 / 294.0],
    &[1.0 / 588.0, 7.0 / 1440.0, 21.0 / 3872.0],
    &[
        1.0 / 4320.0,
        3.0 / 1936.0,
        7601.0 / 2271360.0,
        143.0 / 28800.0,
    ],
    &[
        1.0 / 23232.0,
        7601.0 / 13628160.0,
        143.0 / 69120.0,
        517231.0 / 106536960.0,
        106640677.0 / 11737571328.0,
    ],
];

/// Maximum charge-assignment order supported (LAMMPS default is 5).
pub const MAX_ORDER: usize = 5;

/// Resolved k-space parameters for a requested relative force-error
/// threshold.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KspaceAccuracy {
    /// Requested relative force error (e.g. `1e-4`).
    pub relative_error: f64,
    /// Ewald splitting parameter `g` (1/distance units).
    pub g_ewald: f64,
    /// PPPM mesh dimensions (powers of two).
    pub grid: [usize; 3],
    /// Ewald reciprocal-space cutoff in integer k per dimension.
    pub kmax: [usize; 3],
    /// Estimated real-space RMS force error (absolute, two-charge units).
    pub error_real: f64,
    /// Estimated k-space RMS force error (absolute, two-charge units).
    pub error_kspace: f64,
}

impl KspaceAccuracy {
    /// Derives parameters LAMMPS-style.
    ///
    /// * `cutoff` — real-space Coulomb cutoff;
    /// * `relative_error` — requested relative RMS force error;
    /// * `natoms`, `qsqsum` — atom count and `Σ q²` (charge units²);
    /// * `lengths` — box extents;
    /// * `order` — B-spline assignment order (1..=5).
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive inputs or an unsupported order.
    pub fn resolve(
        cutoff: f64,
        relative_error: f64,
        natoms: usize,
        qsqsum: f64,
        lengths: [f64; 3],
        order: usize,
    ) -> Result<Self> {
        if !(cutoff > 0.0 && relative_error > 0.0 && relative_error < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "kspace accuracy",
                reason: format!(
                    "cutoff ({cutoff}) must be positive and 0 < error ({relative_error}) < 1"
                ),
            });
        }
        if natoms == 0 || qsqsum <= 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "kspace accuracy",
                reason: "need at least one charged atom".to_string(),
            });
        }
        if !(1..=MAX_ORDER).contains(&order) {
            return Err(CoreError::InvalidParameter {
                name: "order",
                reason: format!("assignment order {order} outside 1..={MAX_ORDER}"),
            });
        }
        // Two unit charges one distance-unit apart define the force scale the
        // relative error refers to (LAMMPS `two_charge_force`); charges and
        // the Coulomb constant cancel in the ratio, so work unit-free here.
        let accuracy = relative_error;
        let q2 = qsqsum / natoms as f64;
        let volume = lengths[0] * lengths[1] * lengths[2];

        // Splitting parameter (LAMMPS pppm.cpp).
        let g_ewald = (1.35 - 0.15 * accuracy.ln()) / cutoff;

        let error_real = 2.0 * q2 * (-g_ewald * g_ewald * cutoff * cutoff).exp()
            / (natoms as f64 * cutoff * volume).sqrt();

        // Mesh: per dimension, start from the LAMMPS initial guess h = 1/g
        // and refine (in FFT-friendly 2·3·5-smooth sizes) until the
        // Deserno-Holm estimate meets the target.
        let mut grid = [0usize; 3];
        let mut error_kspace: f64 = 0.0;
        for d in 0..3 {
            let mut n = smooth235((lengths[d] * g_ewald).ceil().max(2.0) as usize);
            loop {
                let h = lengths[d] / n as f64;
                let err = estimate_ik_error(h, lengths[d], g_ewald, q2, natoms, order);
                if err <= accuracy || n >= 8192 {
                    grid[d] = n;
                    error_kspace = error_kspace.max(err);
                    break;
                }
                n = smooth235(n + 1);
            }
        }

        // Ewald integer kmax per dimension (for the reference solver).
        let mut kmax = [1usize; 3];
        for d in 0..3 {
            let mut km = 1usize;
            while ewald_rms(km, lengths[d], g_ewald, q2, natoms) > accuracy && km < 64 {
                km += 1;
            }
            kmax[d] = km;
        }

        Ok(KspaceAccuracy {
            relative_error,
            g_ewald,
            grid,
            kmax,
            error_real,
            error_kspace,
        })
    }

    /// Total mesh points of the PPPM grid.
    pub fn grid_points(&self) -> usize {
        self.grid[0] * self.grid[1] * self.grid[2]
    }
}

/// Deserno-Holm RMS force error of ik-differentiated PPPM at mesh spacing
/// `h`, normalized so that the known LAMMPS operating point — the rhodopsin
/// deck's order-5 mesh at `h·g ≈ 0.6–0.8` hitting 1e-4 relative accuracy —
/// is reproduced.
pub fn estimate_ik_error(
    h: f64,
    prd: f64,
    g_ewald: f64,
    q2: f64,
    natoms: usize,
    order: usize,
) -> f64 {
    let acons = ACONS[order];
    let hg = h * g_ewald;
    let mut sum = 0.0;
    for (m, &a) in acons.iter().enumerate() {
        sum += a * hg.powi(2 * m as i32);
    }
    q2 * hg.powi(order as i32)
        * (g_ewald * prd * (2.0 * std::f64::consts::PI).sqrt() * sum / natoms as f64).sqrt()
}

/// Smallest 2·3·5-smooth integer ≥ `n` (FFT-friendly mesh size).
pub fn smooth235(n: usize) -> usize {
    let mut m = n.max(2);
    loop {
        let mut k = m;
        for p in [2usize, 3, 5] {
            while k.is_multiple_of(p) {
                k /= p;
            }
        }
        if k == 1 {
            return m;
        }
        m += 1;
    }
}

/// Kolafa-Perram style RMS force error of an Ewald sum truncated at integer
/// wavevector `km` along a dimension of extent `prd` (LAMMPS `ewald.cpp`).
pub fn ewald_rms(km: usize, prd: f64, g_ewald: f64, q2: f64, natoms: usize) -> f64 {
    let km = km as f64;
    2.0 * q2 * g_ewald / prd
        * (1.0 / (std::f64::consts::PI * km * natoms as f64)).sqrt()
        * (-std::f64::consts::PI.powi(2) * km * km / (g_ewald * g_ewald * prd * prd)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolve(err: f64) -> KspaceAccuracy {
        KspaceAccuracy::resolve(10.0, err, 32_000, 16_000.0, [55.0, 55.0, 55.0], 5).unwrap()
    }

    #[test]
    fn g_ewald_matches_lammps_formula() {
        let acc = resolve(1e-4);
        let want = (1.35 - 0.15 * (1e-4f64).ln()) / 10.0;
        assert!((acc.g_ewald - want).abs() < 1e-12);
    }

    #[test]
    fn tighter_threshold_means_bigger_grid() {
        let coarse = resolve(1e-4);
        let tight = resolve(1e-7);
        assert!(
            tight.grid_points() > coarse.grid_points(),
            "{:?} vs {:?}",
            tight.grid,
            coarse.grid
        );
        assert!(tight.g_ewald > coarse.g_ewald);
        assert!(tight.kmax[0] > coarse.kmax[0]);
    }

    #[test]
    fn estimated_errors_meet_the_target() {
        for err in [1e-4, 1e-5, 1e-6, 1e-7] {
            let acc = resolve(err);
            assert!(acc.error_kspace <= err * 1.0001, "kspace {:?}", acc);
            assert!(acc.error_real <= err * 10.0, "real {:?}", acc);
        }
    }

    #[test]
    fn grids_are_fft_friendly() {
        let acc = resolve(1e-6);
        for n in acc.grid {
            assert_eq!(smooth235(n), n, "grid dim {n} must be 2-3-5 smooth");
        }
    }

    #[test]
    fn smooth235_rounds_up() {
        assert_eq!(smooth235(7), 8);
        assert_eq!(smooth235(11), 12);
        assert_eq!(smooth235(121), 125);
        assert_eq!(smooth235(30), 30);
    }

    #[test]
    fn grid_respects_initial_h_constraint() {
        // LAMMPS starts from h = 1/g and only refines: n >= L·g.
        let acc = resolve(1e-4);
        let g = acc.g_ewald;
        assert!(acc.grid[0] as f64 >= (55.0 * g).floor());
    }

    #[test]
    fn anisotropic_box_gets_anisotropic_grid() {
        let acc =
            KspaceAccuracy::resolve(10.0, 1e-5, 32_000, 16_000.0, [110.0, 55.0, 27.5], 5).unwrap();
        assert!(acc.grid[0] >= acc.grid[1]);
        assert!(acc.grid[1] >= acc.grid[2]);
    }

    #[test]
    fn higher_order_reduces_error_at_fine_mesh() {
        // In the asymptotic regime (h·g << 1) a higher assignment order
        // strictly reduces the Deserno-Holm error estimate.
        let g = 0.3;
        let h = 0.5; // h·g = 0.15
        let mut prev = f64::INFINITY;
        for order in 1..=5 {
            let err = estimate_ik_error(h, 55.0, g, 0.5, 32_000, order);
            assert!(err < prev, "order {order}: {err} !< {prev}");
            prev = err;
        }
    }

    #[test]
    fn rejects_nonsense() {
        assert!(KspaceAccuracy::resolve(0.0, 1e-4, 10, 1.0, [1.0; 3], 5).is_err());
        assert!(KspaceAccuracy::resolve(10.0, 2.0, 10, 1.0, [1.0; 3], 5).is_err());
        assert!(KspaceAccuracy::resolve(10.0, 1e-4, 0, 1.0, [1.0; 3], 5).is_err());
        assert!(KspaceAccuracy::resolve(10.0, 1e-4, 10, 1.0, [1.0; 3], 9).is_err());
    }
}
