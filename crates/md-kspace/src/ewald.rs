//! Classic Ewald summation (LAMMPS `kspace_style ewald`).
//!
//! The reciprocal-space sum is evaluated exactly over a half-space of k
//! vectors chosen from the accuracy model; together with the real-space
//! `erfc` term of the pair style and the self-energy correction it gives the
//! full periodic Coulomb energy. PPPM approximates this solver with an FFT;
//! the test suite checks PPPM against Ewald and Ewald against the Madelung
//! constant.

use crate::accuracy::KspaceAccuracy;
use crate::complex::Complex;
use md_core::force::KspaceStats;
use md_core::{CoreError, EnergyVirial, KspaceStyle, Result, SimBox, Vec3, V3};

/// One reciprocal-space vector with its precomputed coefficient.
#[derive(Debug, Clone, Copy)]
struct KVector {
    k: V3,
    /// `exp(-k²/4g²)/k²`.
    coeff: f64,
}

/// The Ewald reciprocal-space solver.
#[derive(Debug, Clone)]
pub struct Ewald {
    cutoff: f64,
    relative_error: f64,
    g_ewald: f64,
    kvectors: Vec<KVector>,
    kmax: [usize; 3],
    estimated_error: f64,
    qsqsum: f64,
    qsum: f64,
    volume: f64,
    /// Coulomb conversion constant of the simulation's unit system
    /// (see [`Ewald::set_qqr2e`]); defaults to 1 (reduced units).
    qqr2e_effective: f64,
}

impl Ewald {
    /// Creates a solver for a real-space `cutoff` and a relative force-error
    /// threshold; parameters are finalized by [`KspaceStyle::setup`].
    ///
    /// # Panics
    ///
    /// Panics if `cutoff` or `relative_error` is non-positive.
    pub fn new(cutoff: f64, relative_error: f64) -> Self {
        assert!(cutoff > 0.0, "cutoff must be positive");
        assert!(
            relative_error > 0.0 && relative_error < 1.0,
            "relative error must be in (0, 1)"
        );
        Ewald {
            cutoff,
            relative_error,
            g_ewald: 0.0,
            kvectors: Vec::new(),
            kmax: [0; 3],
            estimated_error: 0.0,
            qsqsum: 0.0,
            qsum: 0.0,
            volume: 0.0,
            qqr2e_effective: 1.0,
        }
    }

    /// Sets the Coulomb conversion constant (`qqr2e` of the unit system);
    /// the solver itself is unit-agnostic.
    pub fn set_qqr2e(&mut self, qqr2e: f64) {
        self.qqr2e_effective = qqr2e;
    }

    /// The splitting parameter chosen at setup (pair styles need it for the
    /// matching real-space `erfc` term).
    pub fn g_ewald(&self) -> f64 {
        self.g_ewald
    }

    /// Number of reciprocal vectors in the half-space sum.
    pub fn kvector_count(&self) -> usize {
        self.kvectors.len()
    }
}

impl KspaceStyle for Ewald {
    fn name(&self) -> &'static str {
        "ewald"
    }

    fn setup(&mut self, bx: &SimBox, q: &[f64]) -> Result<()> {
        let natoms = q.len();
        let qsqsum: f64 = q.iter().map(|&qi| qi * qi).sum();
        if qsqsum <= 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "charges",
                reason: "ewald requires a charged system".to_string(),
            });
        }
        let l = bx.lengths();
        let acc = KspaceAccuracy::resolve(
            self.cutoff,
            self.relative_error,
            natoms,
            qsqsum,
            [l.x, l.y, l.z],
            5,
        )?;
        self.g_ewald = acc.g_ewald;
        self.kmax = acc.kmax;
        self.estimated_error = acc.error_kspace.max(acc.error_real);
        self.qsqsum = qsqsum;
        self.qsum = q.iter().sum();
        self.volume = bx.volume();

        // Enumerate the half-space: (kz > 0) ∪ (kz = 0, ky > 0) ∪
        // (kz = ky = 0, kx > 0).
        let two_pi = 2.0 * std::f64::consts::PI;
        let g2inv4 = 1.0 / (4.0 * self.g_ewald * self.g_ewald);
        self.kvectors.clear();
        let (mx, my, mz) = (
            self.kmax[0] as i64,
            self.kmax[1] as i64,
            self.kmax[2] as i64,
        );
        for nz in 0..=mz {
            for ny in -my..=my {
                for nx in -mx..=mx {
                    let half_space =
                        nz > 0 || (nz == 0 && ny > 0) || (nz == 0 && ny == 0 && nx > 0);
                    if !half_space {
                        continue;
                    }
                    let k = Vec3::new(
                        two_pi * nx as f64 / l.x,
                        two_pi * ny as f64 / l.y,
                        two_pi * nz as f64 / l.z,
                    );
                    let k2 = k.norm2();
                    let coeff = (-k2 * g2inv4).exp() / k2;
                    // Skip vectors whose contribution is negligible.
                    if coeff > 1e-14 {
                        self.kvectors.push(KVector { k, coeff });
                    }
                }
            }
        }
        Ok(())
    }

    fn compute(&mut self, bx: &SimBox, x: &[V3], q: &[f64], f: &mut [V3]) -> EnergyVirial {
        let qqr2e = self.qqr2e_effective;
        let volume = bx.volume();
        let four_pi_over_v = 4.0 * std::f64::consts::PI / volume;
        let two_pi_over_v = 2.0 * std::f64::consts::PI / volume;
        let n = x.len();
        let mut energy = 0.0;
        // Structure factor and forces, one k at a time (O(N·K)).
        let mut phases: Vec<Complex> = vec![Complex::ZERO; n];
        let mut virial = 0.0;
        for kv in &self.kvectors {
            let mut s = Complex::ZERO;
            for i in 0..n {
                let theta = kv.k.dot(x[i]);
                let ph = Complex::cis(-theta);
                phases[i] = ph;
                s += ph.scale(q[i]);
            }
            let s_norm2 = s.norm2();
            // Half-space: double everything.
            energy += 2.0 * two_pi_over_v * kv.coeff * s_norm2;
            virial += 2.0 * two_pi_over_v * kv.coeff * s_norm2; // isotropic part
            let s_conj = s.conj();
            for i in 0..n {
                // Im(conj(S) e^{-ik·r_i}) with phases[i] = e^{-ik·r_i}.
                let im = (s_conj * phases[i]).im;
                let mag = -2.0 * four_pi_over_v * kv.coeff * q[i] * im;
                f[i] += kv.k * (qqr2e * mag);
            }
        }
        // Self-energy and (for non-neutral systems) background corrections.
        let self_e = -self.g_ewald / std::f64::consts::PI.sqrt() * self.qsqsum;
        let background = -std::f64::consts::PI / (2.0 * volume * self.g_ewald * self.g_ewald)
            * self.qsum
            * self.qsum;
        EnergyVirial {
            evdwl: 0.0,
            ecoul: qqr2e * (energy + self_e + background),
            virial: qqr2e * virial,
        }
    }

    fn stats(&self) -> KspaceStats {
        KspaceStats {
            grid: [
                2 * self.kmax[0] + 1,
                2 * self.kmax[1] + 1,
                2 * self.kmax[2] + 1,
            ],
            grid_points: (2 * self.kmax[0] + 1) * (2 * self.kmax[1] + 1) * (2 * self.kmax[2] + 1),
            g_ewald: self.g_ewald,
            estimated_error: self.estimated_error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_core::math::erfc;

    /// Rock-salt lattice of `n³` alternating unit charges, spacing 1.
    fn nacl(n: usize) -> (SimBox, Vec<V3>, Vec<f64>) {
        let bx = SimBox::cubic(n as f64);
        let mut x = Vec::new();
        let mut q = Vec::new();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    x.push(Vec3::new(i as f64, j as f64, k as f64));
                    q.push(if (i + j + k) % 2 == 0 { 1.0 } else { -1.0 });
                }
            }
        }
        (bx, x, q)
    }

    /// Direct real-space erfc sum within `cutoff` (the pair-style part).
    fn real_space_energy(bx: &SimBox, x: &[V3], q: &[f64], g: f64, cutoff: f64) -> f64 {
        let mut e = 0.0;
        for i in 0..x.len() {
            for j in (i + 1)..x.len() {
                let r = bx.min_image(x[i], x[j]).norm();
                if r < cutoff {
                    e += q[i] * q[j] * erfc(g * r) / r;
                }
            }
        }
        e
    }

    #[test]
    fn madelung_constant_of_rock_salt() {
        let (bx, x, q) = nacl(8);
        let mut ewald = Ewald::new(3.9, 1e-6);
        ewald.set_qqr2e(1.0);
        ewald.setup(&bx, &q).unwrap();
        let mut f = vec![Vec3::zero(); x.len()];
        let e = ewald.compute(&bx, &x, &q, &mut f);
        let total = e.ecoul + real_space_energy(&bx, &x, &q, ewald.g_ewald(), 3.9);
        let per_ion = total / x.len() as f64;
        // E/N = -M/2 with nearest-neighbor distance 1; M(NaCl) = 1.747565.
        let want = -1.7475645946 / 2.0;
        assert!(
            (per_ion - want).abs() < 2e-4,
            "per-ion energy {per_ion}, want {want}"
        );
    }

    #[test]
    fn forces_vanish_on_perfect_lattice() {
        let (bx, x, q) = nacl(6);
        let mut ewald = Ewald::new(2.9, 1e-5);
        ewald.set_qqr2e(1.0);
        ewald.setup(&bx, &q).unwrap();
        let mut f = vec![Vec3::zero(); x.len()];
        ewald.compute(&bx, &x, &q, &mut f);
        // Reciprocal force on a lattice site is cancelled by the (symmetric)
        // real-space part; by symmetry the reciprocal part alone also nearly
        // vanishes at lattice sites.
        let max_f = f.iter().map(|fi| fi.norm()).fold(0.0f64, f64::max);
        assert!(max_f < 1e-6, "max reciprocal force {max_f}");
    }

    #[test]
    fn net_force_is_zero() {
        // A disordered charged system: momentum conservation requires Σ F = 0.
        let bx = SimBox::cubic(10.0);
        let x = vec![
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(4.5, 5.5, 1.2),
            Vec3::new(7.7, 0.3, 8.8),
            Vec3::new(2.2, 9.1, 6.4),
        ];
        let q = vec![1.0, -1.0, 1.0, -1.0];
        let mut ewald = Ewald::new(4.9, 1e-5);
        ewald.set_qqr2e(1.0);
        ewald.setup(&bx, &q).unwrap();
        let mut f = vec![Vec3::zero(); 4];
        ewald.compute(&bx, &x, &q, &mut f);
        let net = f.iter().fold(Vec3::zero(), |a, &b| a + b);
        assert!(net.norm() < 1e-10, "net reciprocal force {net}");
    }

    #[test]
    fn reciprocal_force_matches_numerical_derivative() {
        let bx = SimBox::cubic(10.0);
        let base = vec![Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.5, 5.5, 1.2)];
        let q = vec![1.0, -1.0];
        let mut ewald = Ewald::new(4.9, 1e-6);
        ewald.set_qqr2e(1.0);
        ewald.setup(&bx, &q).unwrap();
        let energy = |x: &[V3]| {
            let mut e2 = ewald.clone();
            let mut f = vec![Vec3::zero(); 2];
            e2.compute(&bx, x, &q, &mut f).ecoul
        };
        let mut f = vec![Vec3::zero(); 2];
        ewald.clone().compute(&bx, &base, &q, &mut f);
        let h = 1e-6;
        for axis in 0..3 {
            let mut xp = base.clone();
            xp[0][axis] += h;
            let mut xm = base.clone();
            xm[0][axis] -= h;
            let dedx = (energy(&xp) - energy(&xm)) / (2.0 * h);
            assert!(
                (f[0][axis] + dedx).abs() < 1e-6,
                "axis {axis}: {} vs {}",
                f[0][axis],
                -dedx
            );
        }
    }

    #[test]
    fn setup_rejects_neutral_zero_charges() {
        let bx = SimBox::cubic(5.0);
        let mut ewald = Ewald::new(2.0, 1e-4);
        assert!(ewald.setup(&bx, &[0.0, 0.0]).is_err());
    }

    #[test]
    fn tighter_accuracy_uses_more_kvectors() {
        let (bx, _, q) = nacl(6);
        let mut coarse = Ewald::new(2.9, 1e-4);
        coarse.setup(&bx, &q).unwrap();
        let mut tight = Ewald::new(2.9, 1e-7);
        tight.setup(&bx, &q).unwrap();
        assert!(tight.kvector_count() > coarse.kvector_count());
    }
}
