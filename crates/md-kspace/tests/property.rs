//! Property-based tests for the long-range stack: FFT algebra, accuracy
//! monotonicity, and Ewald physics over random inputs.

use md_core::{KspaceStyle, SimBox, Vec3, V3};
use md_kspace::accuracy::smooth235;
use md_kspace::fft::{dft_reference, fft1d, Direction};
use md_kspace::{Complex, Ewald, Fft3d, KspaceAccuracy, Pppm};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// FFT is linear: FFT(a·x + b·y) = a·FFT(x) + b·FFT(y).
    #[test]
    fn fft_is_linear(
        seed in 0u64..500,
        a in -3.0..3.0f64,
        b in -3.0..3.0f64,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 64;
        let x: Vec<Complex> = (0..n).map(|_| Complex::new(rng.gen(), rng.gen())).collect();
        let y: Vec<Complex> = (0..n).map(|_| Complex::new(rng.gen(), rng.gen())).collect();
        let mut combo: Vec<Complex> = x
            .iter()
            .zip(&y)
            .map(|(&xi, &yi)| xi.scale(a) + yi.scale(b))
            .collect();
        let mut fx = x.clone();
        let mut fy = y.clone();
        fft1d(&mut combo, Direction::Forward).unwrap();
        fft1d(&mut fx, Direction::Forward).unwrap();
        fft1d(&mut fy, Direction::Forward).unwrap();
        for k in 0..n {
            let want = fx[k].scale(a) + fy[k].scale(b);
            prop_assert!((combo[k] - want).norm() < 1e-9);
        }
    }

    /// Forward-inverse roundtrip is the identity for any power-of-two size.
    #[test]
    fn fft_roundtrip(seed in 0u64..500, log_n in 1u32..9) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 1usize << log_n;
        let x: Vec<Complex> = (0..n).map(|_| Complex::new(rng.gen(), rng.gen())).collect();
        let mut y = x.clone();
        fft1d(&mut y, Direction::Forward).unwrap();
        fft1d(&mut y, Direction::Inverse).unwrap();
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).norm() < 1e-10);
        }
    }

    /// The fast transform matches the naive DFT on random small signals.
    #[test]
    fn fft_matches_dft(seed in 0u64..300) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 32;
        let x: Vec<Complex> = (0..n).map(|_| Complex::new(rng.gen(), rng.gen())).collect();
        let mut fast = x.clone();
        fft1d(&mut fast, Direction::Forward).unwrap();
        let slow = dft_reference(&x, Direction::Forward);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).norm() < 1e-9);
        }
    }

    /// smooth235 outputs are 2-3-5-smooth, ≥ input, and minimal.
    #[test]
    fn smooth235_properties(n in 2usize..2000) {
        let m = smooth235(n);
        prop_assert!(m >= n);
        let mut k = m;
        for p in [2usize, 3, 5] {
            while k.is_multiple_of(p) {
                k /= p;
            }
        }
        prop_assert_eq!(k, 1, "{} not smooth", m);
        // Minimality: nothing smooth in [n, m).
        for c in n..m {
            let mut k = c;
            for p in [2usize, 3, 5] {
                while k % p == 0 {
                    k /= p;
                }
            }
            prop_assert!(k != 1, "{} was smooth but skipped", c);
        }
    }

    /// Tightening the threshold never shrinks the mesh or the Ewald kmax.
    #[test]
    fn accuracy_is_monotone(exp1 in 3.0..7.0f64, d in 0.2..2.0f64) {
        let coarse = KspaceAccuracy::resolve(
            10.0, 10f64.powf(-exp1), 32_000, 16_000.0, [60.0, 70.0, 80.0], 5,
        ).unwrap();
        let tight = KspaceAccuracy::resolve(
            10.0, 10f64.powf(-(exp1 + d)), 32_000, 16_000.0, [60.0, 70.0, 80.0], 5,
        ).unwrap();
        prop_assert!(tight.g_ewald > coarse.g_ewald);
        for dd in 0..3 {
            prop_assert!(tight.grid[dd] >= coarse.grid[dd]);
            prop_assert!(tight.kmax[dd] >= coarse.kmax[dd]);
        }
    }

    /// The reciprocal-space energy of a neutral system is translation
    /// invariant (periodic box).
    #[test]
    fn ewald_energy_is_translation_invariant(
        seed in 0u64..200,
        tx in 0.0..10.0f64,
        ty in 0.0..10.0f64,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let l = 10.0;
        let bx = SimBox::cubic(l);
        let x: Vec<V3> = (0..12)
            .map(|_| Vec3::new(rng.gen::<f64>() * l, rng.gen::<f64>() * l, rng.gen::<f64>() * l))
            .collect();
        let q: Vec<f64> = (0..12).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let mut ewald = Ewald::new(4.9, 1e-4);
        ewald.setup(&bx, &q).unwrap();
        let mut f = vec![Vec3::zero(); 12];
        let e0 = ewald.compute(&bx, &x, &q, &mut f).ecoul;
        let shifted: Vec<V3> = x
            .iter()
            .map(|&p| {
                let mut s = p + Vec3::new(tx, ty, 0.0);
                let mut img = [0; 3];
                bx.wrap(&mut s, &mut img);
                s
            })
            .collect();
        let mut f = vec![Vec3::zero(); 12];
        let e1 = ewald.compute(&bx, &shifted, &q, &mut f).ecoul;
        prop_assert!((e0 - e1).abs() < 1e-9 * e0.abs().max(1.0), "{e0} vs {e1}");
    }
}

/// PPPM's reciprocal energy is invariant under charge conjugation
/// (q → -q) — the energy is quadratic in the charges.
#[test]
fn pppm_energy_is_even_in_charges() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(5);
    let l = 11.0;
    let bx = SimBox::cubic(l);
    let x: Vec<V3> = (0..30)
        .map(|_| {
            Vec3::new(
                rng.gen::<f64>() * l,
                rng.gen::<f64>() * l,
                rng.gen::<f64>() * l,
            )
        })
        .collect();
    let q: Vec<f64> = (0..30)
        .map(|i| if i % 2 == 0 { 0.7 } else { -0.7 })
        .collect();
    let neg: Vec<f64> = q.iter().map(|&qi| -qi).collect();
    let mut pppm = Pppm::new(5.4, 1e-5, 5);
    pppm.setup(&bx, &q).unwrap();
    let mut f1 = vec![Vec3::zero(); 30];
    let e1 = pppm.compute(&bx, &x, &q, &mut f1).ecoul;
    let mut f2 = vec![Vec3::zero(); 30];
    let e2 = pppm.compute(&bx, &x, &neg, &mut f2).ecoul;
    assert!((e1 - e2).abs() < 1e-9 * e1.abs(), "{e1} vs {e2}");
    for (a, b) in f1.iter().zip(&f2) {
        assert!(
            (*a - *b).norm() < 1e-9 * a.norm().max(1.0),
            "forces must match"
        );
    }
}

/// 3D FFT Parseval equality on random meshes.
#[test]
fn fft3d_parseval() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(3);
    let mut fft = Fft3d::new(8, 16, 4).unwrap();
    let mut data: Vec<Complex> = (0..fft.len())
        .map(|_| Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
        .collect();
    let e_time: f64 = data.iter().map(|z| z.norm2()).sum();
    fft.transform(&mut data, Direction::Forward).unwrap();
    let e_freq: f64 = data.iter().map(|z| z.norm2()).sum::<f64>() / fft.len() as f64;
    assert!((e_time - e_freq).abs() < 1e-9 * e_time);
}
