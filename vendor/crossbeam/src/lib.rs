//! Offline stand-in for `crossbeam`.
//!
//! verlette only uses `crossbeam::thread::scope` + `Scope::spawn`. Since
//! Rust 1.63 the standard library has structured scoped threads, so this
//! vendored crate adapts `std::thread::scope` to crossbeam's calling
//! convention (spawn closures take a `&Scope` argument; `scope` returns a
//! `Result` that is `Err` if any spawned thread panicked).

/// Scoped threads in crossbeam's API shape.
pub mod thread {
    /// Handle passed to spawn closures (crossbeam passes the scope back in).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope, so nested
        /// spawns work exactly as under crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner: &'scope std::thread::Scope<'scope, 'env> = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowed scoped threads can be
    /// spawned; joins them all before returning.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the panic payload of the first panicked thread
    /// (crossbeam returns all payloads; one is enough for `.expect`).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'a, 'scope> FnOnce(&'a Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let wrapper = Scope { inner: s };
                f(&wrapper)
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects_results() {
        let mut parts = vec![0u64; 4];
        super::thread::scope(|s| {
            for (i, p) in parts.iter_mut().enumerate() {
                s.spawn(move |_| {
                    *p = (i as u64 + 1) * 10;
                });
            }
        })
        .unwrap();
        assert_eq!(parts, vec![10, 20, 30, 40]);
    }

    #[test]
    fn panic_in_worker_becomes_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
