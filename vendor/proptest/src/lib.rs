//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API that verlette's property tests
//! use: range strategies, tuple strategies, `prop_map`, `collection::vec`,
//! `bool::ANY`, `ProptestConfig::with_cases`, and the `proptest!` macro with
//! `prop_assert!` / `prop_assert_eq!`. Cases are sampled from a
//! deterministic RNG seeded from the test name, so failures reproduce; there
//! is no shrinking — the failing case's index is reported instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How many random cases each `proptest!` test runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of sampled cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values (no shrinking in this stand-in).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Constant strategy (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Boolean strategies.
pub mod bool {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Uniform random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The `proptest::bool::ANY` strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Sizes accepted by [`vec`]: a fixed length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: vectors of `element` with `size` items.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.lo + (rng.gen::<u64>() as usize) % (self.size.hi - self.size.lo);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

/// Deterministic per-test RNG (seeded from the test path).
pub fn rng_for(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// The `proptest!` macro: runs each enclosed `#[test]` over `cases` sampled
/// inputs. Accepts an optional leading `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut proptest_rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for proptest_case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut proptest_rng);)*
                    let run = || -> () { $body };
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    if let Err(cause) = outcome {
                        eprintln!(
                            "proptest case {}/{} of {} failed",
                            proptest_case + 1,
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(cause);
                    }
                }
            }
        )*
    };
}

/// `prop_assert!`: assertion usable inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `prop_assert_eq!`: equality assertion usable inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(a in 0.0..5.0f64, b in 1usize..9) {
            prop_assert!((0.0..5.0).contains(&a));
            prop_assert!((1..9).contains(&b));
        }

        #[test]
        fn tuples_and_map_compose(
            p in (0.0..1.0f64, 0.0..1.0f64).prop_map(|(x, y)| x + y),
        ) {
            prop_assert!((0.0..2.0).contains(&p));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0.0..1.0f64, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert_eq!(v.iter().filter(|x| **x >= 1.0).count(), 0);
        }
    }
}
