//! Offline stand-in for `serde`.
//!
//! The build container has no registry access. verlette only uses serde for
//! `#[derive(serde::Serialize, serde::Deserialize)]` markers (no
//! serde_json / bincode backend is linked), so this vendored crate provides
//! empty marker traits and derive macros that emit empty impls. Swapping the
//! real serde back in requires only restoring the registry dependency.

/// Marker for types that would be serializable under real serde.
pub trait Serialize {}

/// Marker for types that would be deserializable under real serde.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! mark {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl Deserialize for $t {}
    )*};
}

mark!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char, String);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {}
