//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so this vendored crate
//! provides the (small) subset of the `rand 0.8` API that verlette uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and [`Rng::gen`] /
//! [`Rng::gen_range`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic, fast, and statistically solid for tests and
//! workload seeding (it is not the real crate's ChaCha12 stream, so seeds
//! produce different — but still reproducible — sequences).

/// Types that can be sampled uniformly from an RNG (the real crate's
/// `Standard` distribution, collapsed into one trait).
pub trait Standard: Sized {
    /// Draws one uniformly-distributed value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Core RNG trait: a `u64` source plus convenience samplers.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of `T` (full range for ints, `[0, 1)` for floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A random bool that is `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Stand-in for `rand::rngs::SmallRng` (same engine here).
    pub type SmallRng = StdRng;

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden xoshiro state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured [`StdRng::state`].
        /// The all-zero state is the one forbidden xoshiro state; it is
        /// remapped the same way `seed_from_u64` does, so restoring always
        /// yields a working generator.
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference).
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..5.0f64);
            assert!((-2.0..5.0).contains(&f));
        }
    }
}
