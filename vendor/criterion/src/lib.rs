//! Offline stand-in for `criterion`.
//!
//! The registry is unreachable from the build container, so this vendored
//! crate implements the subset of the criterion 0.5 API that verlette's
//! benches use — `Criterion`, `BenchmarkGroup`, `Bencher::iter` /
//! `iter_batched`, `BenchmarkId`, `BatchSize`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — measuring with plain
//! wall-clock timing and printing a mean/min/max summary per benchmark. No
//! statistical analysis, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement backends (only wall time here).
pub mod measurement {
    /// Wall-clock measurement marker.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// How `iter_batched` amortizes setup (ignored by this stand-in's timer,
/// which always times the routine alone).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

#[derive(Debug, Clone, Copy)]
struct MeasureConfig {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// Per-iteration timing statistics of one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Mean seconds per iteration.
    pub mean: f64,
    /// Fastest sample, seconds per iteration.
    pub min: f64,
    /// Slowest sample, seconds per iteration.
    pub max: f64,
    /// Total iterations executed.
    pub iters: u64,
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.4} ns", seconds * 1e9)
    }
}

/// Passed to benchmark closures; runs and times the workload.
pub struct Bencher<'a> {
    config: MeasureConfig,
    result: &'a mut Option<Summary>,
}

impl Bencher<'_> {
    /// Times `body` repeatedly (criterion's `Bencher::iter`).
    pub fn iter<R>(&mut self, mut body: impl FnMut() -> R) {
        // Warm-up: at least one call, until the warm-up budget is spent.
        let warm_start = Instant::now();
        loop {
            black_box(body());
            if warm_start.elapsed() >= self.config.warm_up_time {
                break;
            }
        }
        // Calibrate iterations per sample from one timed call.
        let t0 = Instant::now();
        black_box(body());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let per_sample =
            self.config.measurement_time.as_secs_f64() / self.config.sample_size as f64;
        let iters_per_sample = (per_sample / once).clamp(1.0, 1e7) as u64;

        let mut samples = Vec::with_capacity(self.config.sample_size);
        let mut total_iters = 1u64;
        for _ in 0..self.config.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(body());
            }
            samples.push(t0.elapsed().as_secs_f64() / iters_per_sample as f64);
            total_iters += iters_per_sample;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        *self.result = Some(Summary {
            mean,
            min,
            max,
            iters: total_iters,
        });
    }

    /// Times `routine` over inputs produced by `setup`, timing only the
    /// routine (criterion's `Bencher::iter_batched`).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let warm_start = Instant::now();
        loop {
            let input = setup();
            black_box(routine(input));
            if warm_start.elapsed() >= self.config.warm_up_time {
                break;
            }
        }
        let mut samples = Vec::with_capacity(self.config.sample_size);
        let mut measured = Duration::ZERO;
        let budget = self.config.measurement_time;
        let mut iters = 0u64;
        while measured < budget && samples.len() < self.config.sample_size.max(1) * 64 {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            let dt = t0.elapsed();
            samples.push(dt.as_secs_f64());
            measured += dt;
            iters += 1;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        *self.result = Some(Summary {
            mean,
            min,
            max,
            iters,
        });
    }
}

fn run_one(
    group: Option<&str>,
    id: &str,
    config: MeasureConfig,
    f: &mut dyn FnMut(&mut Bencher<'_>),
) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut result = None;
    let mut b = Bencher {
        config,
        result: &mut result,
    };
    f(&mut b);
    match result {
        Some(s) => println!(
            "bench {full:<40} mean {:>12}  (min {}, max {}, {} iters)",
            fmt_time(s.mean),
            fmt_time(s.min),
            fmt_time(s.max),
            s.iters,
        ),
        None => println!("bench {full:<40} (no measurement recorded)"),
    }
}

/// A named set of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    config: MeasureConfig,
    _criterion: &'a mut Criterion,
    _marker: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher<'_>),
    ) -> &mut Self {
        run_one(Some(&self.name), &id.to_string(), self.config, &mut f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher<'_>, &I),
    ) -> &mut Self {
        run_one(Some(&self.name), &id.to_string(), self.config, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    config: MeasureConfig,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let config = self.config;
        BenchmarkGroup {
            name: name.into(),
            config,
            _criterion: self,
            _marker: std::marker::PhantomData,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher<'_>),
    ) -> &mut Self {
        run_one(None, &id.to_string(), self.config, &mut f);
        self
    }
}

/// Declares a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
