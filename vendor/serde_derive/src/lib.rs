//! Offline stand-in for `serde_derive`.
//!
//! Parses the derive input with the bare `proc_macro` API (no syn/quote in
//! the offline container) just far enough to recover the type name and its
//! generic parameters, then emits an empty marker impl:
//!
//! ```ignore
//! #[derive(serde::Serialize)]        // on `struct Vec3<R> { .. }`
//! // expands to: impl<R> ::serde::Serialize for Vec3<R> {}
//! ```
//!
//! Bounds on the generic parameters are kept in the impl generics and
//! stripped from the type-argument list. Where-clauses and defaulted
//! parameters are handled; attributes (including `#[serde(...)]`) are
//! ignored.

use proc_macro::{TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    derive_marker(input, "Serialize")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    derive_marker(input, "Deserialize")
}

fn derive_marker(input: TokenStream, trait_name: &str) -> TokenStream {
    let (name, generics) = parse_item(input)
        .unwrap_or_else(|| panic!("serde_derive stub: could not find struct/enum/union name"));
    let (impl_generics, type_args) = split_generics(&generics);
    let code = format!("impl{impl_generics} ::serde::{trait_name} for {name}{type_args} {{}}");
    code.parse().expect("generated impl parses")
}

/// Returns the item name and the raw tokens of its generic parameter list
/// (without the outer `<` `>`), e.g. `("Vec3", "R : Real , const N : usize")`.
fn parse_item(input: TokenStream) -> Option<(String, String)> {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                let name = match iter.next()? {
                    TokenTree::Ident(n) => n.to_string(),
                    _ => return None,
                };
                let mut generics = String::new();
                if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                    iter.next();
                    let mut depth = 1usize;
                    for tt in iter.by_ref() {
                        if let TokenTree::Punct(p) = &tt {
                            match p.as_char() {
                                '<' => depth += 1,
                                '>' => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                        }
                        generics.push_str(&tt.to_string());
                        generics.push(' ');
                    }
                }
                return Some((name, generics.trim().to_string()));
            }
        }
    }
    None
}

/// From raw generic tokens, builds `(impl_generics, type_args)`:
/// `"R : Real , const N : usize"` → `("<R : Real , const N : usize>", "<R, N>")`.
fn split_generics(generics: &str) -> (String, String) {
    if generics.is_empty() {
        return (String::new(), String::new());
    }
    let mut args: Vec<String> = Vec::new();
    for param in split_top_level(generics) {
        let param = param.trim();
        if param.is_empty() {
            continue;
        }
        // Strip any bounds/defaults: keep the parameter name only.
        let head = param.split([':', '=']).next().unwrap_or(param).trim();
        let name = if let Some(rest) = head.strip_prefix("const ") {
            rest.trim()
        } else {
            head
        };
        args.push(name.to_string());
    }
    (format!("<{generics}>"), format!("<{}>", args.join(", ")))
}

/// Splits on commas that are not nested inside `<...>`, `(...)`, or `[...]`.
fn split_top_level(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth -= 1,
            ',' if depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(c);
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}
